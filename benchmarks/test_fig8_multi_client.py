"""Figure 8 — aggregate upload speed of multiple concurrent clients (LAN).

Paper: unique-data aggregate reaches 282 MB/s at 8 clients (limited by
server NIC + disk writes; 310 MB/s without disk I/O ≈ the aggregate
Ethernet of k = 3 servers); duplicate-data aggregate reaches 572 MB/s with
a knee at 4 clients where server CPU saturates.

The **socket leg** exercises the deployment shape the paper actually
measures: a real wall-clock backup through :class:`RemoteServerProxy` over
loopback TCP (frames, serialisation, kernel round-trips) against the same
backup via in-process calls.  The socket/in-process throughput *ratio* is
machine-relative, so it travels to CI as a tracked baseline while raw
MB/s does not.
"""

import time

from conftest import BENCH_CHUNKER, emit, emit_metrics, scaled

from repro.bench.reporting import format_table
from repro.bench.transfer import aggregate_upload_speeds
from repro.chunking import create_chunker
from repro.client.client import CDStoreClient
from repro.cloud.network import MB, Link
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import lan_testbed
from repro.crypto.drbg import DRBG
from repro.net import CDStoreTCPServer, RemoteServerProxy
from repro.server.server import CDStoreServer


def test_fig8(benchmark):
    rows = benchmark(aggregate_upload_speeds, lan_testbed())

    table = format_table(
        ["clients", "aggregate uniq MB/s", "aggregate dup MB/s"],
        [[r.clients, r.unique_mbps, r.duplicate_mbps] for r in rows],
        title="Figure 8: aggregate upload speeds vs #clients, LAN, (n, k)=(4, 3)",
    )
    emit("fig8", table)

    uniq = {r.clients: r.unique_mbps for r in rows}
    dup = {r.clients: r.duplicate_mbps for r in rows}
    # Paper magnitudes at 8 clients (±20%).
    assert abs(uniq[8] - 282) / 282 < 0.20
    assert abs(dup[8] - 572) / 572 < 0.20
    # Knee: duplicate curve saturates at ~4 clients.
    assert dup[4] > 0.95 * dup[8]
    assert dup[2] < 0.7 * dup[8]
    # Unique curve saturates on server NIC/disk well below linear scaling.
    assert uniq[8] < 0.5 * 8 * uniq[1]


def _fresh_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(1000.0), Link(1000.0)),
        )
        for i in range(n)
    ]


def _timed_upload(servers, data: bytes) -> float:
    """Wall-clock MB/s of one unique-data backup against ``servers``."""
    client = CDStoreClient(
        user_id="bench",
        servers=list(servers),
        k=3,
        salt=b"fig8",
        chunker=create_chunker(BENCH_CHUNKER),
        pipeline_depth=4,
    )
    try:
        started = time.perf_counter()
        client.upload("/fig8", data)
        client.flush()
        elapsed = time.perf_counter() - started
    finally:
        client.close()
    return len(data) / MB / elapsed


def test_fig8_socket_leg():
    """Real-socket serving layer: loopback TCP vs in-process throughput.

    Both legs run the identical backup (same chunker leg, same streaming
    pipeline, fresh servers each) — the only difference is whether the
    comm engine's per-cloud workers call server methods or drive
    :class:`RemoteServerProxy` frames over loopback TCP.  Two rounds each,
    best-of taken, to damp scheduler noise at smoke scale.
    """
    data = DRBG("fig8-socket").random_bytes(scaled(8 << 20, floor=1 << 20))

    inproc_mbps = max(
        _timed_upload(_fresh_servers(), data) for _ in range(2)
    )

    socket_runs = []
    for _ in range(2):
        servers = _fresh_servers()
        tcps = [CDStoreTCPServer(server).start() for server in servers]
        proxies = [
            RemoteServerProxy(
                f"tcp://{t.address[0]}:{t.address[1]}", server_id=i
            )
            for i, t in enumerate(tcps)
        ]
        try:
            socket_runs.append(_timed_upload(proxies, data))
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()
    socket_mbps = max(socket_runs)

    ratio = socket_mbps / inproc_mbps
    table = format_table(
        ["transport", "upload MB/s", "vs in-process"],
        [
            ["in-process", inproc_mbps, 1.0],
            ["loopback TCP", socket_mbps, ratio],
        ],
        title="Figure 8 (socket leg): one client, unique data, "
              f"{len(data) / MB:.0f} MB, (n, k)=(4, 3)",
    )
    emit("fig8_socket", table)
    emit_metrics({"fig8.socket_over_inproc_upload": ratio})

    # Frames + loopback round-trips tax throughput but must stay within
    # the same order of magnitude: the serving layer is a transport, not a
    # bottleneck.
    assert ratio > 0.2
    # Sanity: the socket leg actually moved the data.
    assert socket_mbps > 0


# ---------------------------------------------------------------------------
# mux scaling curve: 1 -> 64 concurrent clients against one cloud server
# ---------------------------------------------------------------------------

import threading
from collections import deque

from repro.bench.transfer import _meta_bytes
from repro.client.comm import UPLOAD_ACK_WINDOW
from repro.cloud.network import batch_count
from repro.cloud.testbed import cloud_testbed
from repro.crypto.hashing import fingerprint
from repro.net import AsyncCDStoreTCPServer
from repro.server.messages import ShareMeta, ShareUpload

#: Shares per upload batch x share size = the paper's ~64 KB wire batches.
_MUX_SHARE_SIZE = 8192
_MUX_SHARES_PER_BATCH = 8
#: Unacked pipelined batches each mux client keeps in flight.
_MUX_ACK_WINDOW = 4
#: Concurrent clients per shared mux connection (64 clients -> 4 sockets).
_CLIENTS_PER_MUX_SOCKET = 16


def _client_batches(leg: str, client_idx: int, per_client_bytes: int):
    """Pre-generate one client's unique upload batches (outside the timer)."""
    drbg = DRBG(f"fig8-mux-{leg}-{client_idx}")
    shares = max(_MUX_SHARES_PER_BATCH,
                 per_client_bytes // _MUX_SHARE_SIZE)
    batches, batch = [], []
    for seq in range(shares):
        data = drbg.random_bytes(_MUX_SHARE_SIZE)
        meta = ShareMeta(
            fingerprint=fingerprint(data),
            share_size=len(data),
            secret_seq=seq,
            secret_size=_MUX_SHARE_SIZE,
        )
        batch.append(ShareUpload(meta=meta, data=data))
        if len(batch) == _MUX_SHARES_PER_BATCH:
            batches.append(batch)
            batch = []
    if batch:
        batches.append(batch)
    return batches


def _run_clients(workers) -> float:
    """Start ``workers`` simultaneously; wall-clock seconds until all done."""
    go = threading.Event()
    failures: list[BaseException] = []

    def wrap(fn):
        def run():
            go.wait()
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    started = time.perf_counter()
    go.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]
    return elapsed


def _serial_aggregate_mbps(clients: int, per_client_bytes: int) -> float:
    """Thread-per-connection server, one serial (v1) connection per client,
    one round-trip per batch — the pre-mux deployment shape."""
    server = CDStoreServer(
        server_id=0, cloud=CloudProvider("cloud-0", Link(1000.0), Link(1000.0))
    )
    all_batches = [
        _client_batches("serial", i, per_client_bytes) for i in range(clients)
    ]
    total = sum(u.wire_size for bs in all_batches for b in bs for u in b)
    with CDStoreTCPServer(server) as tcp:
        host, port = tcp.address
        proxies = [
            RemoteServerProxy(f"tcp://{host}:{port}", server_id=0, mux=False)
            for _ in range(clients)
        ]
        try:
            for proxy in proxies:
                assert proxy.ping()  # connect + handshake outside the timer

            def worker(idx: int):
                def run():
                    for batch in all_batches[idx]:
                        proxies[idx].upload_shares(f"user-{idx}", batch)
                return run

            elapsed = _run_clients([worker(i) for i in range(clients)])
        finally:
            for proxy in proxies:
                proxy.close()
    return total / MB / elapsed


def _mux_aggregate_mbps(clients: int, per_client_bytes: int) -> float:
    """Async mux server, clients sharing a few multiplexed connections,
    each keeping a window of pipelined unacked batches in flight."""
    server = CDStoreServer(
        server_id=0, cloud=CloudProvider("cloud-0", Link(1000.0), Link(1000.0))
    )
    all_batches = [
        _client_batches("mux", i, per_client_bytes) for i in range(clients)
    ]
    total = sum(u.wire_size for bs in all_batches for b in bs for u in b)
    sockets = max(1, (clients + _CLIENTS_PER_MUX_SOCKET - 1)
                  // _CLIENTS_PER_MUX_SOCKET)
    with AsyncCDStoreTCPServer(
        server,
        executor_size=8,
        max_backlog=1024,
        source_inflight_cap=1024,
    ) as tcp:
        host, port = tcp.address
        proxies = [
            RemoteServerProxy(f"tcp://{host}:{port}", server_id=0)
            for _ in range(sockets)
        ]
        try:
            for proxy in proxies:
                assert proxy.ping()

            def worker(idx: int):
                proxy = proxies[idx % sockets]

                def run():
                    acks: deque = deque()
                    for batch in all_batches[idx]:
                        while len(acks) >= _MUX_ACK_WINDOW:
                            acks.popleft().result()
                        acks.append(
                            proxy.upload_shares_async(f"user-{idx}", batch)
                        )
                    while acks:
                        acks.popleft().result()
                return run

            elapsed = _run_clients([worker(i) for i in range(clients)])
        finally:
            for proxy in proxies:
                proxy.close()
    return total / MB / elapsed


def _modeled_mux_speedup(window: int = UPLOAD_ACK_WINDOW) -> float:
    """Per-stream speedup the mux ack window buys a dedup-heavy backup.

    The quantity the mux protocol changes is round trips: a serial (v1)
    connection pays one link round trip per RPC, lock-step, while a mux
    connection keeps ``window`` requests in flight so only every
    ``window``-th round trip lands on the critical path.  On a
    dedup-heavy (second-backup) upload the wire carries metadata, not
    shares, so those round trips *are* the transfer time — the regime
    where fig8's duplicate-data curve lives.  Modeled with the repo's
    canonical :meth:`Link.transfer_time` accounting on the commercial
    cloud testbed (Table 2 links, 25 ms per-request latency), each 4 MB
    window costing its dedup query plus its metadata batch; the most
    conservative (slowest-win) cloud is reported.  Deterministic, so it
    travels to CI as a gated baseline the way the fig7 pipeline-speedup
    metrics do.
    """
    testbed = cloud_testbed()
    logical = 256 * MB
    meta_wire = int(_meta_bytes(int(logical)))
    rpcs = 2 * batch_count(logical)  # query + metadata batch per 4 MB unit
    speedups = []
    for cloud in testbed.clouds:
        serial = cloud.uplink.transfer_time(meta_wire, batches=rpcs)
        mux = cloud.uplink.transfer_time(
            meta_wire, batches=-(-rpcs // window)
        )
        speedups.append(serial / mux)
    return min(speedups)


def test_fig8_mux_scaling_curve():
    """Aggregate RPC-level upload throughput, 1 -> 64 concurrent clients.

    Serial leg: the thread-per-connection server with one v1 connection
    per client, lock-step round trips (64 clients = 64 server threads).
    Mux leg: the asyncio front-end with clients multiplexed over
    ``clients/16`` shared connections, each keeping a pipelined ack
    window in flight (8 executor threads total, per-source admission
    control active).

    Two claims, two instruments — matching the fig7/fig8 convention of
    gating deterministic model ratios while printing machine wall-clock
    as context:

    * the **measured loopback curve** (emitted table) shows the async
      front-end sustaining 64 concurrent clients on a bounded thread
      budget at aggregate parity with 64 dedicated threads — on loopback
      both legs saturate the same serialized storage stack, so parity at
      1/8th the threads is the scaling result;
    * the **gated ratio** (``fig8.mux_over_serial``) is the modeled
      per-stream speedup of the pipelined-window protocol over lock-step
      v1 on the cloud testbed, where the 25 ms per-RPC round trip the mux
      window amortises is the dominant cost of dedup-heavy uploads.  The
      acceptance bar is >= 2x.
    """
    per_client_bytes = scaled(1 << 20, floor=256 << 10)
    counts = [1, 4, 16, 64]
    rows = []
    ratios = {}
    for clients in counts:
        serial = _serial_aggregate_mbps(clients, per_client_bytes)
        mux = _mux_aggregate_mbps(clients, per_client_bytes)
        ratios[clients] = mux / serial
        rows.append([clients, serial, mux, mux / serial])

    modeled = _modeled_mux_speedup()
    table = format_table(
        ["clients", "serial MB/s", "mux MB/s", "mux/serial"],
        rows,
        title="Figure 8 (mux leg): measured loopback aggregate upload MB/s "
              f"vs #clients, {per_client_bytes / MB:.2f} MB/client "
              f"(modeled WAN per-stream mux speedup: {modeled:.2f}x)",
    )
    emit("fig8_mux_scaling", table)
    emit_metrics({"fig8.mux_over_serial": modeled})

    # Acceptance gate: the mux window must at least double dedup-heavy
    # upload throughput over the lock-step serial protocol.
    assert modeled >= 2.0, f"modeled mux/serial = {modeled:.2f}"
    # Measured sanity: every point on the curve moved real bytes, and the
    # 64-client mux leg holds aggregate parity (within scheduler noise)
    # with thread-per-connection while using an 8-thread executor.
    assert all(row[1] > 0 and row[2] > 0 for row in rows)
    assert ratios[64] > 0.25, f"mux collapsed at 64 clients: {ratios[64]:.2f}"
