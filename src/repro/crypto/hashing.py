"""SHA-256 helpers: convergent hash keys and deduplication fingerprints.

The paper uses SHA-256 both as the hash function ``H`` of convergent
dispersal (Eq. 1 and 4, §3.2) and for share fingerprints in two-stage
deduplication (§4).  We use the stdlib ``hashlib`` implementation (SHA-256
is available in every CPython build; no third-party dependency).

Two deliberately *distinct* fingerprint domains are provided, because §3.3
requires the server to compute its own fingerprints rather than trust the
client's: ``fingerprint(data, domain="client")`` and ``domain="server"``
yield unrelated values for the same share, so a stolen client fingerprint
cannot be replayed to claim ownership of a share (the side-channel attack of
[27, 43]).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.errors import ParameterError

__all__ = ["HASH_SIZE", "sha256", "hash_key", "fingerprint", "hmac_sha256"]

#: Size in bytes of all hashes/fingerprints in this library (SHA-256).
HASH_SIZE = 32

_FINGERPRINT_DOMAINS = ("client", "server")


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_key(secret: bytes, salt: bytes = b"") -> bytes:
    """The convergent hash key ``h = H(X)`` of Eq. (1).

    An optional ``salt`` scopes deduplication: all clients of one
    organisation share a salt, so their identical secrets converge, while an
    attacker outside the organisation cannot precompute hashes (§3.2 notes
    the hash "optionally salted").
    """
    if salt:
        return hashlib.sha256(salt + secret).digest()
    return hashlib.sha256(secret).digest()


def fingerprint(data: bytes, domain: str = "client") -> bytes:
    """Deduplication fingerprint of a share or chunk.

    ``domain`` selects an independent fingerprint function: the client uses
    its own for intra-user deduplication, and the server recomputes under
    the server domain for inter-user deduplication, exactly as §3.3
    prescribes to stop fingerprint-replay side channels.
    """
    if domain not in _FINGERPRINT_DOMAINS:
        raise ParameterError(
            f"unknown fingerprint domain {domain!r}; expected one of "
            f"{_FINGERPRINT_DOMAINS}"
        )
    return hashlib.sha256(domain.encode("ascii") + b"\x00" + data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256, used by the DRBG and by keyed-fingerprint variants."""
    return _hmac.new(key, data, hashlib.sha256).digest()
