"""Container management (§4.5).

The container module maintains two kinds of containers at the storage
backend: *share containers* holding globally-unique shares and *recipe
containers* holding file recipes.  Containers are capped at 4 MB — except
that an oversized file recipe is kept whole in its own container rather
than split, "to reduce I/Os".

Two I/O optimisations from the paper are implemented:

* **per-user write buffers** — shares/recipes are buffered per user so
  "each container contains only the data of a single user", retaining the
  spatial locality deduplicated restores rely on [62];
* an **LRU container cache** holding the most recently accessed containers
  to cut backend reads.

Container wire format::

    u32 magic | u8 kind | u32 count | count * (u32 keylen | u32 len | key | payload)
    | count * u32 entry_offset | u32 entries_end | u32 count | u32 footer_magic

The trailing **offset footer** (one ``u32`` per entry plus a 12-byte
trailer) lets readers locate any entry with a single ranged backend read
— the restore path serves individual shares without ever materialising a
whole 4 MB container in server memory (see
:meth:`ContainerManager.read_entry_ranged`).  Deserialisation accepts
footer-less blobs for compatibility with containers written before the
footer existed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import NotFoundError, ParameterError, StorageError
from repro.lsm.cache import LRUCache
from repro.storage.backend import StorageBackend
from repro.storage.journal import ContainerJournal

__all__ = ["CONTAINER_CAP", "Container", "ContainerManager", "ContainerRef"]

#: Maximum container payload (4 MB, §4.5).
CONTAINER_CAP = 4 << 20

_MAGIC = 0xCD57043E
_HEADER = struct.Struct(">IBI")
_ENTRY = struct.Struct(">II")
_FOOTER_MAGIC = 0xCD5700F7
#: Footer trailer: entries_end | entry count | footer magic.
_TRAILER = struct.Struct(">III")

KIND_SHARE = 1
KIND_RECIPE = 2
_KINDS = {KIND_SHARE, KIND_RECIPE}


@dataclass(frozen=True)
class ContainerRef:
    """Location of one entry inside a container.

    The share index stores one of these per unique share (§4.4: each entry
    "stores the reference to the container that holds the share").
    """

    container_id: str
    entry_index: int

    def pack(self) -> bytes:
        cid = self.container_id.encode("ascii")
        return struct.pack(">HI", len(cid), self.entry_index) + cid

    @classmethod
    def unpack(cls, blob: bytes) -> "ContainerRef":
        if len(blob) < 6:
            raise StorageError("ContainerRef blob truncated")
        cid_len, entry = struct.unpack_from(">HI", blob)
        if len(blob) < 6 + cid_len:
            raise StorageError("ContainerRef id truncated")
        try:
            cid = blob[6 : 6 + cid_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise StorageError(f"ContainerRef id not ASCII: {exc}") from exc
        return cls(container_id=cid, entry_index=entry)


class Container:
    """An in-memory container: an ordered list of (key, payload) entries."""

    def __init__(self, kind: int) -> None:
        if kind not in _KINDS:
            raise ParameterError(f"unknown container kind {kind}")
        self.kind = kind
        self.entries: list[tuple[bytes, bytes]] = []
        self.payload_bytes = 0

    def add(self, key: bytes, payload: bytes) -> int:
        """Append an entry; returns its index within the container."""
        self.entries.append((key, payload))
        self.payload_bytes += len(key) + len(payload)
        return len(self.entries) - 1

    @property
    def full(self) -> bool:
        return self.payload_bytes >= CONTAINER_CAP

    def serialize(self) -> bytes:
        parts = [_HEADER.pack(_MAGIC, self.kind, len(self.entries))]
        offsets: list[int] = []
        pos = _HEADER.size
        for key, payload in self.entries:
            offsets.append(pos)
            parts.append(_ENTRY.pack(len(key), len(payload)))
            parts.append(key)
            parts.append(payload)
            pos += _ENTRY.size + len(key) + len(payload)
        parts.append(struct.pack(f">{len(offsets)}I", *offsets))
        parts.append(_TRAILER.pack(pos, len(offsets), _FOOTER_MAGIC))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "Container":
        if len(blob) < _HEADER.size:
            raise StorageError("container blob truncated")
        magic, kind, count = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise StorageError("bad container magic")
        container = cls(kind)
        pos = _HEADER.size
        for _ in range(count):
            if pos + _ENTRY.size > len(blob):
                raise StorageError("container entry header truncated")
            keylen, paylen = _ENTRY.unpack_from(blob, pos)
            pos += _ENTRY.size
            if pos + keylen + paylen > len(blob):
                raise StorageError("container entry body truncated")
            key = blob[pos : pos + keylen]
            pos += keylen
            payload = blob[pos : pos + paylen]
            pos += paylen
            container.add(key, payload)
        # Trailing bytes must be a valid offset footer (or absent entirely,
        # for blobs written before the footer existed): a truncated or
        # garbled footer means the blob cannot be trusted.
        if pos != len(blob):
            parse_footer(blob[pos:], entries_end=pos, count=count)
        return container


def parse_footer(
    footer: bytes, entries_end: int, count: int | None = None
) -> list[int]:
    """Validate an offset footer; returns the per-entry start offsets.

    ``entries_end`` is the absolute offset where the footer begins (i.e.
    where the last entry ends); ``count``, when known, is cross-checked
    against the footer's own entry count.  Raises :class:`StorageError` on
    any disagreement — ranged readers must fail loudly rather than slice
    at stale offsets.
    """
    if len(footer) < _TRAILER.size:
        raise StorageError("container footer truncated")
    end, footer_count, magic = _TRAILER.unpack_from(footer, len(footer) - _TRAILER.size)
    if magic != _FOOTER_MAGIC:
        raise StorageError("bad container footer magic")
    if end != entries_end:
        raise StorageError(
            f"container footer end {end} != entry region end {entries_end}"
        )
    if count is not None and footer_count != count:
        raise StorageError(
            f"container footer counts {footer_count} entries, header {count}"
        )
    if len(footer) != _TRAILER.size + 4 * footer_count:
        raise StorageError("container footer size mismatch")
    offsets = list(struct.unpack_from(f">{footer_count}I", footer))
    bounds = offsets + [entries_end]
    if any(a >= b for a, b in zip(bounds, bounds[1:])) or (
        offsets and offsets[0] != _HEADER.size
    ):
        raise StorageError("container footer offsets not monotonic")
    return offsets


class ContainerManager:
    """Buffers, writes, caches and reads containers at one backend.

    Parameters
    ----------
    backend:
        The cloud's object store.
    cache_bytes:
        Capacity of the LRU container cache (default 32 MB).
    journal:
        Optional :class:`~repro.storage.journal.ContainerJournal`.  When
        present the manager runs in **crash-only** mode: every append is
        journaled before it is buffered, :meth:`commit` makes a batch of
        appends durable (the server calls it before each wire ack), and
        construction replays the journal — republishing every journaled
        container under its original id, so acked ``ContainerRef``\\ s
        stay valid across kill -9.
    on_seal:
        Optional callback ``(user_id, container_id, payload_bytes)``
        invoked whenever a user's container is sealed (accounting hook;
        solo oversized recipes report the owning user too).
    """

    def __init__(
        self,
        backend: StorageBackend,
        cache_bytes: int = 32 << 20,
        journal: ContainerJournal | None = None,
        on_seal=None,
    ) -> None:
        self.backend = backend
        self.journal = journal
        self.on_seal = on_seal
        self._cache = LRUCache(cache_bytes, size_of=len)
        # Offset tables for ranged entry reads: container id -> start
        # offsets + entry-region end.  A table is ~4 bytes per entry, so
        # 1 MB caches tables for hundreds of 4 MB containers.
        self._footers = LRUCache(1 << 20, size_of=lambda t: 4 * len(t[0]) + 8)
        # Per-(user, kind) open write buffers: single-user containers (§4.5).
        self._buffers: dict[tuple[str, int], Container] = {}
        self._buffer_ids: dict[tuple[str, int], str] = {}
        self._next_id = 0
        self._restore_next_id()
        # Replay *before* the first append: journaled ids must be
        # republished (and counted) before _new_container_id could
        # re-allocate one of them.
        self.recovered_containers: list[str] = (
            self._recover() if journal is not None else []
        )

    def _restore_next_id(self) -> None:
        keys = self.backend.list_keys("container-")
        for key in keys:
            try:
                self._next_id = max(self._next_id, int(key.split("-")[1]) + 1)
            except (IndexError, ValueError):
                continue

    def _new_container_id(self) -> str:
        cid = f"container-{self._next_id:010d}"
        self._next_id += 1
        return cid

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, user_id: str, kind: int, key: bytes, payload: bytes) -> ContainerRef:
        """Buffer one entry for ``user_id``; returns its future location.

        The entry lands in the user's open container, which is sealed and
        written to the backend once it reaches the 4 MB cap.  An oversized
        recipe bypasses the cap and is written alone in its own container
        (§4.5 "we keep the file recipe in a single container and allow the
        container to go beyond 4MB").
        """
        if kind not in _KINDS:
            raise ParameterError(f"unknown container kind {kind}")
        if kind == KIND_RECIPE and len(payload) >= CONTAINER_CAP:
            solo = Container(kind)
            solo.add(key, payload)
            # Sealed (published durably) right here, so the solo path
            # needs no journal record to survive a crash.
            cid = self._seal(solo, user_id=user_id)
            return ContainerRef(container_id=cid, entry_index=0)
        buf_key = (user_id, kind)
        container = self._buffers.get(buf_key)
        if container is None:
            container = Container(kind)
            self._buffers[buf_key] = container
            self._buffer_ids[buf_key] = self._new_container_id()
        entry = container.add(key, payload)
        ref = ContainerRef(
            container_id=self._buffer_ids[buf_key], entry_index=entry
        )
        if self.journal is not None:
            self.journal.record(
                ref.container_id, ref.entry_index, kind, user_id, key, payload
            )
        if container.full:
            self._seal(container, self._buffer_ids[buf_key], user_id=user_id)
            del self._buffers[buf_key]
            del self._buffer_ids[buf_key]
            if not self._buffers and self.journal is not None:
                # Every journaled entry now lives in a published
                # container; start the journal over instead of letting
                # it shadow-copy the whole session.
                self.journal.reset()
        return ref

    def commit(self) -> None:
        """Make every append so far crash-durable (one fsync, batched).

        The serving layer calls this once per upload batch *before* the
        wire ack — the crash-only contract that an acked share is never
        RAM-only.  A no-op without a journal (in-process systems keep
        their original buffer-until-flush behaviour).
        """
        if self.journal is not None:
            self.journal.commit()

    def _seal(
        self, container: Container, cid: str | None = None, user_id: str | None = None
    ) -> str:
        cid = cid or self._new_container_id()
        blob = container.serialize()
        self.backend.put_object(cid, blob)
        self._cache.put(cid, blob)
        if self.on_seal is not None and user_id is not None:
            self.on_seal(user_id, cid, container.payload_bytes)
        return cid

    def flush(self) -> None:
        """Seal and write every open buffer (end of an upload session)."""
        for buf_key, container in list(self._buffers.items()):
            self._seal(container, self._buffer_ids[buf_key], user_id=buf_key[0])
            del self._buffers[buf_key]
            del self._buffer_ids[buf_key]
        if self.journal is not None:
            # All journaled entries are now inside published containers.
            self.journal.reset()

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _recover(self) -> list[str]:
        """Republish every journaled container missing from the backend.

        Runs at construction (crash-only: every startup is recovery).
        Entries are regrouped by container id and written at their
        journaled indices, so every ``ContainerRef`` handed out before
        the crash resolves to identical bytes.  Containers that already
        exist were sealed before the crash and are skipped.  Ends with a
        journal reset: recovery leaves no half-state behind.
        """
        assert self.journal is not None
        pending: dict[str, dict[int, tuple[int, str, bytes, bytes]]] = {}
        for rec in self.journal.replay():
            pending.setdefault(rec.container_id, {})[rec.entry_index] = (
                rec.kind,
                rec.user_id,
                rec.key,
                rec.payload,
            )
        republished: list[str] = []
        for cid in sorted(pending):
            try:
                self._next_id = max(self._next_id, int(cid.split("-")[1]) + 1)
            except (IndexError, ValueError):
                pass
            if self.backend.exists(cid):
                continue  # sealed before the crash
            entries = pending[cid]
            container = Container(next(iter(entries.values()))[0])
            for index in range(len(entries)):
                if index not in entries:
                    raise StorageError(
                        f"journal for {cid} is missing entry {index}; "
                        "cannot reconstruct acked references"
                    )
                kind, user_id, key, payload = entries[index]
                container.add(key, payload)
            self._seal(container, cid, user_id=entries[0][1])
            republished.append(cid)
        self.journal.reset()
        return republished

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _load(self, container_id: str) -> bytes:
        blob = self._cache.get(container_id)
        if blob is None:
            try:
                blob = self.backend.get_object(container_id)
            except NotFoundError:
                # The entry may still sit in an unflushed buffer.
                for buf_key, cid in self._buffer_ids.items():
                    if cid == container_id:
                        return self._buffers[buf_key].serialize()
                raise
            self._cache.put(container_id, blob)
        return blob

    def read_entry(
        self, ref: ContainerRef, bypass_cache: bool = False
    ) -> tuple[bytes, bytes]:
        """Fetch one ``(key, payload)`` entry by reference."""
        container = self.read_container(ref.container_id, bypass_cache=bypass_cache)
        try:
            return container.entries[ref.entry_index]
        except IndexError:
            raise NotFoundError(
                f"entry {ref.entry_index} not in container {ref.container_id}"
            ) from None

    # ------------------------------------------------------------------
    # ranged reading (bounded server memory)
    # ------------------------------------------------------------------
    def _entry_offsets(self, container_id: str) -> tuple[list[int], int] | None:
        """Offset table for ``container_id``: (entry starts, entries end).

        Read via two ranged backend reads (trailer, then the table) and
        cached — the table is ~4 bytes per entry, three orders of
        magnitude smaller than the container it indexes.  Returns None for
        a container written before the footer existed (no footer magic):
        legacy blobs are readable, just not rangeable.  A *present but
        inconsistent* footer still raises — that is corruption, not age.
        """
        cached = self._footers.get(container_id)
        if cached is not None:
            return cached
        size = self.backend.object_size(container_id)
        if size < _HEADER.size + _TRAILER.size:
            return None  # too small to carry a footer: legacy or empty
        end, count, magic = _TRAILER.unpack(
            self.backend.get_range(container_id, size - _TRAILER.size, _TRAILER.size)
        )
        if magic != _FOOTER_MAGIC:
            return None  # pre-footer container
        footer_size = _TRAILER.size + 4 * count
        if end != size - footer_size:
            raise StorageError(f"container {container_id} footer inconsistent")
        offsets = parse_footer(
            self.backend.get_range(container_id, end, footer_size),
            entries_end=end,
            count=count,
        )
        table = (offsets, end)
        self._footers.put(container_id, table)
        return table

    def read_entry_ranged(self, ref: ContainerRef) -> tuple[bytes, bytes]:
        """Fetch one entry *without* materialising its container.

        Served, in preference order, from the whole-container LRU cache
        (already in memory), an unflushed write buffer, or a single ranged
        backend read at the footer offset — the cold path holds only this
        entry plus the container's offset table, never the 4 MB blob.
        Never populates the whole-container cache.  A container written
        before the offset footer existed falls back to the whole-container
        :meth:`read_entry` path — old backups stay restorable.
        """
        blob = self._cache.get(ref.container_id)
        if blob is None:
            for buf_key, cid in self._buffer_ids.items():
                if cid == ref.container_id:
                    try:
                        return self._buffers[buf_key].entries[ref.entry_index]
                    except IndexError:
                        raise NotFoundError(
                            f"entry {ref.entry_index} not in container "
                            f"{ref.container_id}"
                        ) from None
        if blob is not None:
            table = self._footer_from_blob(ref.container_id, blob)
            span = blob
        else:
            table = self._entry_offsets(ref.container_id)
            span = None
        if table is None:  # legacy footer-less container
            return self.read_entry(ref)
        offsets, end = table
        if not 0 <= ref.entry_index < len(offsets):
            raise NotFoundError(
                f"entry {ref.entry_index} not in container {ref.container_id}"
            )
        start = offsets[ref.entry_index]
        stop = (
            offsets[ref.entry_index + 1]
            if ref.entry_index + 1 < len(offsets)
            else end
        )
        if span is None:
            span = self.backend.get_range(ref.container_id, start, stop - start)
            start, stop = 0, len(span)
        keylen, paylen = _ENTRY.unpack_from(span, start)
        if _ENTRY.size + keylen + paylen != stop - start:
            raise StorageError(
                f"entry {ref.entry_index} of {ref.container_id} disagrees "
                "with its footer span"
            )
        key_end = start + _ENTRY.size + keylen
        return bytes(span[start + _ENTRY.size : key_end]), bytes(
            span[key_end : key_end + paylen]
        )

    def _footer_from_blob(
        self, container_id: str, blob: bytes
    ) -> tuple[list[int], int] | None:
        """Offset table parsed from an already-loaded blob (cache hits).

        None means a legacy footer-less blob (see :meth:`_entry_offsets`).
        """
        cached = self._footers.get(container_id)
        if cached is not None:
            return cached
        if len(blob) < _HEADER.size + _TRAILER.size:
            return None
        end, count, magic = _TRAILER.unpack_from(blob, len(blob) - _TRAILER.size)
        if magic != _FOOTER_MAGIC:
            return None
        offsets = parse_footer(blob[end:], entries_end=end, count=count)
        table = (offsets, end)
        self._footers.put(container_id, table)
        return table

    def read_container(self, container_id: str, bypass_cache: bool = False) -> Container:
        """Fetch a whole container (restore path: spatial locality).

        ``bypass_cache=True`` forces a backend read and refreshes the
        cache — integrity scrubbing must see the bytes actually stored,
        not a cached pre-corruption copy.
        """
        if bypass_cache:
            blob = self.backend.get_object(container_id)
            self._cache.put(container_id, blob)
            return Container.deserialize(blob)
        return Container.deserialize(self._load(container_id))

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the container cache."""
        return self._cache.hits, self._cache.misses
