"""Consistent-hash ring for sharding window fetches across replicas.

The gateway must spread fetch load over its serving replicas *stably*:
the same ``(backup, window)`` must keep landing on the same replicas so
the hot-container cache actually accumulates hits, and adding or
removing one replica must move only ``~1/n`` of the keyspace (a modulo
scheme would reshuffle everything and cold-start the cache fleet-wide).

Classic construction: each replica owns ``vnodes`` pseudo-random points
on a 64-bit ring (SHA-256 of ``"node:vnode"`` — deterministic across
processes and Python's per-process hash randomisation); a key hashes to
a point and walks clockwise collecting *distinct* replicas in
preference order.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ParameterError

__all__ = ["HashRing"]


def _point(data: bytes) -> int:
    """A stable 64-bit ring position for ``data``."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over integer node ids."""

    def __init__(self, node_ids: list[int], vnodes: int = 64) -> None:
        if not node_ids:
            raise ParameterError("a hash ring needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise ParameterError(f"duplicate node ids: {sorted(node_ids)}")
        if vnodes < 1:
            raise ParameterError(f"vnodes must be >= 1, got {vnodes}")
        self.node_ids = sorted(node_ids)
        points: list[tuple[int, int]] = []
        for node_id in self.node_ids:
            for vnode in range(vnodes):
                points.append((_point(b"%d:%d" % (node_id, vnode)), node_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def preferred(self, key: bytes) -> list[int]:
        """All node ids in preference order for ``key``.

        Deterministic: the first ``k`` entries are the replicas a
        gateway fetches a window from, and the tail is the natural
        ordering a future rebalance would promote from.
        """
        start = bisect.bisect_right(self._points, _point(key))
        seen: list[int] = []
        for i in range(len(self._owners)):
            owner = self._owners[(start + i) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.node_ids):
                    break
        return seen
