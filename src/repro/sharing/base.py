"""Common interface for all (n, k, r) secret-sharing schemes.

The paper defines a secret sharing algorithm by three parameters
``(n, k, r)`` with ``n > k > r >= 0``: the secret is dispersed into ``n``
shares, reconstructible from any ``k``, and not inferable (even partially)
from any ``r`` (§2).  This module captures that contract as an abstract base
class plus a small value object for a produced share set.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import CodingError, ParameterError

__all__ = ["SecretSharingScheme", "ShareSet"]


@dataclass(frozen=True)
class ShareSet:
    """The ``n`` shares produced for one secret.

    Attributes
    ----------
    shares:
        Share ``i`` is destined for cloud ``i`` (the paper pins share index
        to cloud index so identical secrets deduplicate per cloud, §3.2).
    secret_size:
        Original secret length in bytes; needed to strip padding at decode.
    scheme:
        Name of the producing scheme, for diagnostics.
    """

    shares: tuple[bytes, ...]
    secret_size: int
    scheme: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def n(self) -> int:
        return len(self.shares)

    @property
    def share_size(self) -> int:
        return len(self.shares[0]) if self.shares else 0

    @property
    def total_size(self) -> int:
        return sum(len(s) for s in self.shares)

    @property
    def storage_blowup(self) -> float:
        """Ratio of total share bytes to secret bytes (Table 1 metric)."""
        if self.secret_size == 0:
            return float("inf")
        return self.total_size / self.secret_size

    def subset(self, indices: list[int]) -> dict[int, bytes]:
        """Pick the shares at ``indices`` as a decode input mapping."""
        return {i: self.shares[i] for i in indices}


class SecretSharingScheme(abc.ABC):
    """Abstract (n, k, r) secret-sharing scheme.

    Concrete schemes are constructed with their parameters (and, for the
    randomised ones, an optional deterministic RNG for reproducibility) and
    expose :meth:`split` / :meth:`recover`.
    """

    #: Human-readable scheme name (set by subclasses).
    name: str = "abstract"

    #: Whether identical secrets always yield identical shares (the property
    #: convergent dispersal adds; False for every classical scheme).
    deterministic: bool = False

    def __init__(self, n: int, k: int, r: int) -> None:
        if not (n >= k >= 1):
            raise ParameterError(f"require n >= k >= 1, got (n={n}, k={k})")
        if not (0 <= r < k):
            raise ParameterError(f"require 0 <= r < k, got (k={k}, r={r})")
        if n > 255:
            raise ParameterError(f"GF(256) limits n to 255, got {n}")
        self.n = n
        self.k = k
        self.r = r

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def split(self, secret: bytes) -> ShareSet:
        """Disperse ``secret`` into ``n`` shares."""

    @abc.abstractmethod
    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        """Reconstruct the secret from any ``k`` shares.

        ``shares`` maps share index to share bytes; ``secret_size`` is the
        original length (shares carry padding).
        """

    # ------------------------------------------------------------------
    # batch interface
    # ------------------------------------------------------------------
    def encode_batch(self, secrets: Sequence[bytes]) -> list[ShareSet]:
        """Disperse many secrets at once; element ``i`` equals ``split(secrets[i])``.

        The generic fallback simply loops; vectorised schemes override it to
        amortise per-call overhead (stacking same-length secrets into 2-D
        arrays so one generator-matrix multiply covers the whole batch).
        Randomised schemes draw per-secret randomness in batch order, so a
        seeded RNG yields byte-identical output either way.
        """
        return [self.split(secret) for secret in secrets]

    def decode_batch(
        self, requests: Sequence[tuple[dict[int, bytes], int]]
    ) -> list[bytes]:
        """Reconstruct many secrets at once.

        ``requests`` is a sequence of ``(shares, secret_size)`` pairs as
        accepted by :meth:`recover`; element ``i`` of the result equals
        ``recover(*requests[i])``.  The generic fallback loops; vectorised
        schemes group requests decoded from the same ``k``-subset and invert
        once for the whole group.
        """
        return [self.recover(shares, size) for shares, size in requests]

    # ------------------------------------------------------------------
    def expected_blowup(self, secret_size: int) -> float:
        """Analytic storage blowup for a secret of ``secret_size`` bytes.

        Default is the measured blowup of an actual split; subclasses with a
        closed form override this (Table 1 column).
        """
        probe = self.split(bytes(secret_size))
        return probe.storage_blowup

    def _check_recover_args(
        self, shares: dict[int, bytes], secret_size: int
    ) -> dict[int, bytes]:
        if len(shares) < self.k:
            raise CodingError(
                f"{self.name}: need k={self.k} shares, got {len(shares)}"
            )
        if secret_size < 0:
            raise ParameterError(f"negative secret_size {secret_size}")
        for idx in shares:
            if not 0 <= idx < self.n:
                raise ParameterError(f"share index {idx} outside [0, {self.n})")
        return shares

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n}, k={self.k}, r={self.r})"
