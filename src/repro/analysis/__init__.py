"""Analysis tools: restore fragmentation metrics.

§5.5 observes that "deduplication now introduces chunk fragmentation [38]
for subsequent backups" and that download speed "will gradually degrade
due to fragmentation as we store more backups", while declining to address
it.  :mod:`repro.analysis.fragmentation` provides the measurement side:
per-restore container-access metrics that quantify the effect on real
deployments (and feed the fragmentation derating of the transfer model).
"""

from repro.analysis.fragmentation import FragmentationReport, analyze_fragmentation

__all__ = ["FragmentationReport", "analyze_fragmentation"]
