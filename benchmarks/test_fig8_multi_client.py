"""Figure 8 — aggregate upload speed of multiple concurrent clients (LAN).

Paper: unique-data aggregate reaches 282 MB/s at 8 clients (limited by
server NIC + disk writes; 310 MB/s without disk I/O ≈ the aggregate
Ethernet of k = 3 servers); duplicate-data aggregate reaches 572 MB/s with
a knee at 4 clients where server CPU saturates.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.transfer import aggregate_upload_speeds
from repro.cloud.testbed import lan_testbed


def test_fig8(benchmark):
    rows = benchmark(aggregate_upload_speeds, lan_testbed())

    table = format_table(
        ["clients", "aggregate uniq MB/s", "aggregate dup MB/s"],
        [[r.clients, r.unique_mbps, r.duplicate_mbps] for r in rows],
        title="Figure 8: aggregate upload speeds vs #clients, LAN, (n, k)=(4, 3)",
    )
    emit("fig8", table)

    uniq = {r.clients: r.unique_mbps for r in rows}
    dup = {r.clients: r.duplicate_mbps for r in rows}
    # Paper magnitudes at 8 clients (±20%).
    assert abs(uniq[8] - 282) / 282 < 0.20
    assert abs(dup[8] - 572) / 572 < 0.20
    # Knee: duplicate curve saturates at ~4 clients.
    assert dup[4] > 0.95 * dup[8]
    assert dup[2] < 0.7 * dup[8]
    # Unique curve saturates on server NIC/disk well below linear scaling.
    assert uniq[8] < 0.5 * 8 * uniq[1]
