"""The CDStore client (§4.1-4.3, Figure 4a).

One client runs at each user's machine: it chunks backup files into
secrets, encodes each secret into ``n`` shares with convergent dispersal,
performs intra-user deduplication against each server, uploads unique
shares in 4 MB batches, and offloads all metadata (file recipes, share
metadata, secret-shared pathnames) to the servers so a client-side failure
loses nothing.
"""

from repro.client.client import CDStoreClient, UploadReceipt
from repro.client.comm import CommEngine

__all__ = ["CDStoreClient", "CommEngine", "UploadReceipt"]
