"""Ablations — component-level design choices called out in DESIGN.md.

* Reed-Solomon generator construction: Vandermonde vs Cauchy (both MDS;
  systematic encode cost should be indistinguishable, decode differs only
  in matrix inversion, amortised by the decode-matrix cache);
* recipe compression on/off: backend bytes for version-heavy backups;
* container LRU cache: backend reads with and without cache hits;
* Rabin vs fixed-size chunking: dedup savings under content shifting
  (the §4.2 rationale for variable-size chunking).
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.chunking import FixedChunker, RabinChunker
from repro.crypto.drbg import DRBG
from repro.erasure.reed_solomon import ReedSolomon


def test_ablation_rs_matrix(benchmark):
    """Vandermonde vs Cauchy generator matrices."""
    import time

    data = DRBG("rs").random_bytes(1 << 20)
    chunks = [data[i : i + 8192] for i in range(0, len(data), 8192)]

    def measure(matrix: str) -> float:
        rs = ReedSolomon(4, 3, matrix=matrix)
        start = time.perf_counter()
        for chunk in chunks:
            pieces = rs.encode(chunk)
            rs.decode({0: pieces[0], 2: pieces[2], 3: pieces[3]}, len(chunk))
        return len(data) / 1e6 / (time.perf_counter() - start)

    results = benchmark.pedantic(
        lambda: {m: measure(m) for m in ("vandermonde", "cauchy")},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["construction", "encode+decode MB/s"],
        [[name, mbps] for name, mbps in results.items()],
        title="Ablation: RS generator construction, (n, k)=(4, 3)",
    )
    emit("ablation_rs_matrix", table)
    # Both are MDS and interchangeable on the wire; Vandermonde runs
    # faster in our scalar-dispatch kernels because its systematised
    # parity rows contain more 0/1 coefficients (which short-circuit to
    # plain XOR) than a Cauchy matrix's dense coefficients.
    fast, slow = max(results.values()), min(results.values())
    assert fast / slow < 4.0
    assert results["vandermonde"] >= results["cauchy"]


def test_ablation_recipe_compression(benchmark):
    """Recipe compression against a version-heavy backup series."""
    from repro.chunking import FixedChunker
    from repro.config import ReproConfig
    from repro.system import CDStoreSystem

    def run(compression: bool) -> int:
        system = CDStoreSystem.from_config(
            ReproConfig(n=4, k=3, salt="org", chunker="fixed:size=4096")
        )
        for server in system.servers:
            server.recipe_compression = compression
        client = system.client("alice", chunker=FixedChunker(4096))
        # Backup data with heavy internal duplication (e.g. database pages
        # or VM images): the recipe repeats the same few fingerprints, the
        # pattern recipe compression [41] exploits.
        blocks = [DRBG(f"block{i}").random_bytes(4096) for i in range(3)]
        data = b"".join(blocks[i % 3] for i in range(120))
        for version in range(4):
            client.upload(f"/v{version}", data)
        system.flush()
        return system.stored_bytes()

    results = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1
    )
    with_c, without_c = results
    table = format_table(
        ["recipe compression", "stored bytes"],
        [["on", with_c], ["off", without_c]],
        title="Ablation: recipe compression, duplicate-heavy backup versions",
    )
    emit("ablation_recipe_compression", table)
    assert with_c < without_c


def test_ablation_container_cache(benchmark):
    """Container LRU cache: repeated restores against backend reads."""
    from repro.chunking import FixedChunker
    from repro.config import ReproConfig
    from repro.system import CDStoreSystem

    def run() -> tuple[int, int]:
        system = CDStoreSystem.from_config(ReproConfig(n=4, k=3))
        client = system.client("alice", chunker=FixedChunker(4096))
        data = DRBG("cache").random_bytes(100_000)
        client.upload("/f", data)
        client.flush()
        before = sum(c.backend.get_ops for c in system.clouds)
        for _ in range(5):
            assert client.download("/f") == data
        after = sum(c.backend.get_ops for c in system.clouds)
        hits = sum(s.containers.cache_stats[0] for s in system.servers)
        return after - before, hits

    backend_reads, cache_hits = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["metric", "count"],
        [["backend reads for 5 restores", backend_reads],
         ["container cache hits", cache_hits]],
        title="Ablation: container LRU cache",
    )
    emit("ablation_container_cache", table)
    assert cache_hits > backend_reads  # most reads served from cache


def test_ablation_chunking(benchmark):
    """Rabin vs fixed chunking under content shifting (§4.2)."""

    def dedup_saving(chunker) -> float:
        base = DRBG("shift").random_bytes(200_000)
        shifted = DRBG("prefix").random_bytes(97) + base  # insertion at front
        baseline = {c.data for c in chunker.chunk_bytes(base)}
        shifted_chunks = list(chunker.chunk_bytes(shifted))
        dup = sum(c.size for c in shifted_chunks if c.data in baseline)
        total = sum(c.size for c in shifted_chunks)
        return dup / total

    def run():
        return {
            "rabin": dedup_saving(RabinChunker(avg_size=4096, min_size=1024, max_size=16384)),
            "fixed": dedup_saving(FixedChunker(4096)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["chunker", "dedup saving after 97-byte insertion %"],
        [[name, 100 * saving] for name, saving in results.items()],
        title="Ablation: content-defined vs fixed chunking under shifting",
    )
    emit("ablation_chunking", table)
    assert results["rabin"] > 0.6
    assert results["fixed"] < 0.1
