"""The ``repro analyze`` checker framework.

A small AST-walking analysis engine purpose-built for this codebase: it
knows nothing about Python semantics in general, only about the handful
of invariants PRs 1–5 established by hand — lock discipline, durability
ordering, wire-surface exhaustiveness, resource lifecycle, spec
picklability — and mechanically re-checks them on every run so a later
refactor cannot silently regress one.

Vocabulary:

* a **rule** is an identifier like ``LOCK-001`` with a registered checker;
* a **finding** is one violation, rendered ``path:line: RULE-NNN message``;
* a **suppression** is an inline ``# analysis: ignore[RULE-NNN] -- why``
  comment on the flagged line.  The justification text after ``--`` is
  mandatory: a bare suppression is itself a finding (SUP-001), so every
  silenced rule carries its reviewable excuse in the diff.

Checkers come in two shapes: *file checkers* run once per parsed file,
*project checkers* run once over the whole file set (the wire-surface
cross-check needs ``wire.py``, the dispatch, the proxy and the README in
one view).  Both return plain :class:`Finding` lists; the engine owns
file collection, parsing, suppression filtering and ordering.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "AnalysisError",
    "FileContext",
    "Finding",
    "Project",
    "RULE_DOCS",
    "iter_python_files",
    "run_analysis",
]


class AnalysisError(Exception):
    """A file could not be analysed at all (unreadable, unparseable)."""


#: One-line documentation per rule, surfaced by ``repro analyze --rules``
#: and kept in sync with the README's invariants section by test.
RULE_DOCS: dict[str, str] = {
    "LOCK-001": (
        "an attribute declared in a guarded_by() map is mutated outside a "
        "`with self.<lock>:` block (and the method is not marked as "
        "requiring the lock)"
    ),
    "DUR-001": (
        "a rename/replace-style publish is reachable after a file write "
        "with no intervening os.fsync barrier (torn on crash)"
    ),
    "DUR-002": (
        "an ack (sendall) is reachable after a file write with no "
        "intervening os.fsync barrier (acks non-durable state)"
    ),
    "WIRE-001": (
        "a frame-type constant in net/wire.py is never referenced by any "
        "server-side module (net/server.py, net/dispatch.py, "
        "net/async_server.py)"
    ),
    "WIRE-002": (
        "a frame-type constant in net/wire.py is never referenced by the "
        "client proxy in net/client.py"
    ),
    "WIRE-003": (
        "a frame-type constant in net/wire.py is missing from the README "
        "frame table"
    ),
    "WIRE-004": "two frame-type constants share the same wire byte value",
    "WIRE-005": (
        "the wire surface drifted from the declared server API: a "
        "CDStoreServerAPI Protocol method without a METHOD_FRAMES mapping "
        "(and not in LOCAL_ONLY_METHODS), a mapping for an undeclared "
        "method, or a T_* request frame that is neither control machinery "
        "nor mapped to any method"
    ),
    "WIRE-006": (
        "the normative wire spec (docs/PROTOCOL.md) drifted from the "
        "code: a frame constant or errors.py wire_code with no spec line "
        "carrying both its name and value, or no spec document at all"
    ),
    "OBS-001": (
        "a metric registered on the obs registry (REGISTRY.counter/gauge/"
        "histogram) is missing from the docs/OBSERVABILITY.md catalogue, "
        "or metrics are registered with no catalogue document at all"
    ),
    "LIFE-001": (
        "a socket/file/shared-memory resource acquired in a function is "
        "not released on all paths (no with/try-finally/ownership handoff "
        "before fallible calls)"
    ),
    "PICKLE-001": (
        "a *Spec dataclass shipped to process workers declares a field "
        "whose type is not on the known-picklable allowlist"
    ),
    "SUP-001": (
        "an `# analysis: ignore[...]` suppression carries no justification "
        "text after `--`"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*analysis:\s*ignore\[([A-Z]+-\d+(?:\s*,\s*[A-Z]+-\d+)*)\]"
    r"(?:\s*--\s*(\S.*))?"
)


class _Suppressions:
    """Per-file map of line -> suppressed rule ids (+ SUP-001 findings)."""

    def __init__(self, display_path: str, lines: list[str]) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.unjustified: list[Finding] = []
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            if not match.group(2):
                # A suppression with no written excuse silences nothing:
                # SUP-001 fires *and* the underlying finding survives.
                self.unjustified.append(
                    Finding(
                        path=display_path,
                        line=lineno,
                        rule="SUP-001",
                        message=(
                            "suppression needs a justification: "
                            "`# analysis: ignore[RULE] -- <why this is safe>`"
                        ),
                    )
                )
                continue
            self.by_line.setdefault(lineno, set()).update(rules)

    def covers(self, finding: Finding) -> bool:
        return finding.rule in self.by_line.get(finding.line, ())


class FileContext:
    """One parsed source file plus the bookkeeping checkers need."""

    def __init__(self, path: Path, display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        try:
            self.source = path.read_text()
        except OSError as exc:
            raise AnalysisError(f"cannot read {display_path}: {exc}") from exc
        try:
            self.tree = ast.parse(self.source, filename=display_path)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {display_path}: {exc.msg} (line {exc.lineno})"
            ) from exc
        self.lines = self.source.splitlines()
        self.suppressions = _Suppressions(display_path, self.lines)
        # Parent links let checkers ask "is this call inside a try whose
        # handler releases the resource" without re-walking from the root.
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def in_scope(self, *directory_names: str) -> bool:
        """Whether any path component (or the module stem) names a scope."""
        parts = set(Path(self.display_path).parts)
        parts.add(Path(self.display_path).stem)
        return bool(parts.intersection(directory_names))

    def finding(self, node_or_line: ast.AST | int, rule: str, message: str) -> Finding:
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else getattr(node_or_line, "lineno", 1)
        )
        return Finding(
            path=self.display_path, line=line, rule=rule, message=message
        )


class Project:
    """The full analysed file set (project-wide cross-checks)."""

    def __init__(self, files: list[FileContext]) -> None:
        self.files = files

    def find(self, *suffixes: str) -> list[FileContext]:
        """Files whose display path ends with any of ``suffixes``."""
        return [
            ctx
            for ctx in self.files
            if any(ctx.display_path.endswith(suffix) for suffix in suffixes)
        ]


FileChecker = Callable[[FileContext], list[Finding]]
ProjectChecker = Callable[[Project], list[Finding]]


def iter_python_files(paths: Iterable[str | Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into ``(path, display_path)`` pairs.

    Directories recurse into ``*.py``; explicit file arguments are taken
    as-is.  Display paths stay as given (relative in, relative out) so
    findings render the way the caller addressed the tree.
    """
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append((path, str(path)))

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                add(sub)
        else:
            add(path)
    return out


def _checkers() -> tuple[list[FileChecker], list[ProjectChecker]]:
    # Imported lazily so `from repro.analysis import engine` has no
    # checker-module import cost (the witness and fragmentation users
    # never need them).
    from repro.analysis.checkers import FILE_CHECKERS, PROJECT_CHECKERS

    return list(FILE_CHECKERS), list(PROJECT_CHECKERS)


def run_analysis(paths: Iterable[str | Path]) -> list[Finding]:
    """Run every registered checker over ``paths``; returns the findings.

    Unparseable files surface as :class:`AnalysisError` — an analysis run
    that cannot see the code must fail loudly, not report a clean tree.
    Suppressed findings are dropped; unjustified suppressions are added.
    """
    file_checkers, project_checkers = _checkers()
    contexts = [
        FileContext(path, display) for path, display in iter_python_files(paths)
    ]
    project = Project(contexts)
    findings: list[Finding] = []
    for ctx in contexts:
        findings.extend(ctx.suppressions.unjustified)
        for checker in file_checkers:
            findings.extend(checker(ctx))
    for checker in project_checkers:
        findings.extend(checker(project))
    by_path = {ctx.display_path: ctx for ctx in contexts}
    kept = [
        finding
        for finding in findings
        if finding.rule == "SUP-001"
        or finding.path not in by_path
        or not by_path[finding.path].suppressions.covers(finding)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept
