"""Exception hierarchy for the CDStore reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems raise the most specific
subclass that describes the failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(ReproError, ValueError):
    """An invalid parameter was supplied (e.g. bad (n, k, r) combination)."""


class CodingError(ReproError):
    """An erasure-coding operation failed (e.g. not enough shares)."""


class IntegrityError(ReproError):
    """Decoded data failed an integrity check (canary or embedded hash)."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, corrupt input...)."""


class StorageError(ReproError):
    """A storage backend or container operation failed."""


class NotFoundError(StorageError, KeyError):
    """A requested object (file, share, container, key) does not exist."""


class CloudError(ReproError):
    """A simulated cloud provider rejected or failed an operation."""


class CloudUnavailableError(CloudError):
    """The simulated cloud is offline (injected outage)."""


class InsufficientCloudsError(CloudError):
    """Fewer than ``k`` clouds are reachable; data cannot be reconstructed."""


class ProtocolError(ReproError):
    """Client/server exchanged malformed or unexpected messages."""


class WorkloadError(ReproError):
    """A workload generator was misconfigured."""
