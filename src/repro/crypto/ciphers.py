"""CTR-mode keystreams and the AONT mask generator ``G``.

The paper's OAEP-based AONT computes a mask ``G(h) = E(h, C)`` — AES-256
encrypting a constant-value block ``C`` the size of the secret, keyed by the
convergent hash ``h`` (§3.2, Eq. 3).  Encrypting a large constant buffer
with a block cipher is counter-mode keystream generation (ECB over a
constant would repeat blocks), so ``G`` is realised as AES-CTR over zeroes.

Rivest's AONT [53] instead masks 16-byte word ``i`` with ``E(key, i)`` —
which is *exactly keystream block i* of the same CTR stream.  The
:class:`AesCtr` class therefore serves both transforms: bulk keystream for
OAEP (one encryption pass over a large block) and per-block access for the
word-by-word Rivest transform, with identical bytes either way.  This is
what lets the Figure 5 benchmark reproduce the paper's cost comparison —
same masks, different call granularity.

Backends
--------
``pure``
    The from-scratch vectorised AES in :mod:`repro.crypto.aes`.  Always
    available; the authoritative implementation for tests.
``openssl``
    Delegates CTR to the host ``cryptography`` wheel (OpenSSL bindings),
    mirroring how the paper's C++ prototype calls OpenSSL [4].  Selected by
    default when available, because encoding-throughput experiments are
    otherwise dominated by interpreter overhead.

Both backends produce identical bytes; a property test pins them together.

The mask-generation ceiling
---------------------------

Convergent dispersal keys every secret's mask with its own hash, so one
EVP key schedule per secret is irreducible — but the Python overhead
around it is not.  The OpenSSL path therefore realises CTR as a
**one-shot AES-ECB-of-counters kernel**: counter blocks are precomputed
once and cached (they are key-independent), a single shared mode object
serves every cipher, each :class:`AesCtr` keeps one reusable encryptor
for its lifetime, and the batch kernel :func:`mask_stack` writes an
entire slab's masks straight into a NumPy block via ``update_into`` —
no per-secret zero buffers, IV packing, or output copies.  ECB of the
counter block sequence is bit-identical to CTR keystream by definition.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.crypto.aes import AES
from repro.errors import CryptoError, ParameterError

__all__ = [
    "AesCtr",
    "ctr_keystream",
    "mask_block",
    "mask_stack",
    "set_aes_backend",
    "aes_backend_name",
    "available_aes_backends",
]

try:  # pragma: no cover - availability depends on host environment
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_OPENSSL = True
    #: Shared stateless mode object: ECB holds no per-cipher state, so one
    #: instance serves every cipher and its construction cost is paid once.
    _ECB = modes.ECB()
except Exception:  # pragma: no cover
    _HAVE_OPENSSL = False
    _ECB = None

_BACKEND_NAMES = ["pure"] + (["openssl"] if _HAVE_OPENSSL else [])
_active_backend = "openssl" if _HAVE_OPENSSL else "pure"


def available_aes_backends() -> list[str]:
    """Names of the AES backends usable in this environment."""
    return list(_BACKEND_NAMES)


def aes_backend_name() -> str:
    """Name of the currently active AES backend."""
    return _active_backend


def set_aes_backend(name: str) -> None:
    """Select the AES backend (``"pure"`` or ``"openssl"``).

    Raises :class:`ParameterError` for unknown or unavailable backends.
    """
    global _active_backend
    if name not in _BACKEND_NAMES:
        raise ParameterError(
            f"unknown AES backend {name!r}; available: {_BACKEND_NAMES}"
        )
    _active_backend = name


def _counter_block_array(start: int, count: int) -> np.ndarray:
    """``count`` 16-byte big-endian counter blocks starting at ``start``."""
    blocks = np.zeros((count, 16), dtype=np.uint8)
    idx = np.arange(start, start + count, dtype=np.uint64)
    for byte in range(8):
        blocks[:, 15 - byte] = (idx >> np.uint64(8 * byte)).astype(np.uint8)
    return blocks


#: Requests up to this many blocks (128 KB of keystream) go through the
#: cached ECB-of-counters kernel; anything larger uses hardware CTR over a
#: zero buffer instead (building megabytes of counter plaintext loses).
_COUNTER_CACHE_BLOCKS = 8192


@lru_cache(maxsize=1)
def _counter_buffer() -> bytes:
    """The one shared counter-plaintext buffer (counters 0..8191).

    Counter blocks are key- and *length*-independent: every request from
    offset 0 is a prefix of this buffer, so one 128 KB build serves all
    mask sizes.  (A per-(start, count) cache would thrash on variable-size
    Rabin chunks — ~a hundred distinct secret sizes per megabyte.)
    """
    return _counter_block_array(0, _COUNTER_CACHE_BLOCKS).tobytes()


def _counter_bytes(start: int, count: int) -> "bytes | memoryview":
    """Counter-block plaintext for the ECB-of-counters kernel."""
    if start == 0 and count <= _COUNTER_CACHE_BLOCKS:
        return memoryview(_counter_buffer())[: count * 16]
    return _counter_block_array(start, count).tobytes()


class AesCtr:
    """AES in counter mode with a 16-byte big-endian block counter.

    Keystream block ``i`` is ``E(key, i)`` where ``i`` is encoded as the
    full 16-byte counter block — i.e. the stream starts from counter 0 with
    no nonce.  Determinism in the key is exactly what convergent dispersal
    requires (the "nonce" role is played by the per-secret key ``h``).
    """

    def __init__(self, key: bytes, backend: str | None = None) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.backend = backend or _active_backend
        if self.backend not in _BACKEND_NAMES:
            raise ParameterError(f"unknown AES backend {self.backend!r}")
        self._pure_cipher: AES | None = None
        self._ecb_encryptor = None

    # ------------------------------------------------------------------
    def _pure(self) -> AES:
        if self._pure_cipher is None:
            self._pure_cipher = AES(self.key)
        return self._pure_cipher

    def _ecb(self):
        """The one reusable EVP context of this cipher (OpenSSL backend).

        ECB applies the raw block cipher independently per block, so a
        single encryptor serves every keystream request of this object —
        one EVP setup per key instead of one per call (the ROADMAP's
        mask-generation ceiling).
        """
        if self._ecb_encryptor is None:
            self._ecb_encryptor = Cipher(algorithms.AES(self.key), _ECB).encryptor()
        return self._ecb_encryptor

    @staticmethod
    def _counter_blocks(start: int, count: int) -> np.ndarray:
        return _counter_block_array(start, count)

    def keystream(self, length: int, block_offset: int = 0) -> bytes:
        """Return ``length`` keystream bytes starting at ``block_offset``.

        ``block_offset`` addresses 16-byte keystream blocks, so
        ``keystream(16, i)`` is Rivest's per-word mask ``E(key, i)`` while
        ``keystream(n)`` is the bulk OAEP mask — the same byte stream.
        """
        if length < 0:
            raise ParameterError(f"negative keystream length {length}")
        if block_offset < 0:
            raise ParameterError(f"negative block offset {block_offset}")
        if length == 0:
            return b""
        nblocks = -(-length // 16)
        if self.backend == "openssl":
            if nblocks <= _COUNTER_CACHE_BLOCKS:
                # ECB over the explicit counter blocks == CTR keystream,
                # with the counter plaintext cached instead of rebuilt per
                # call — the fast path for per-secret masks.
                return self._ecb().update(
                    _counter_bytes(block_offset, nblocks)
                )[:length]
            # Bulk requests: hardware CTR over a zero buffer beats
            # materialising megabytes of counter plaintext.
            iv = int(block_offset).to_bytes(16, "big")
            enc = Cipher(algorithms.AES(self.key), modes.CTR(iv)).encryptor()
            return enc.update(bytes(nblocks * 16))[:length]
        stream = self._pure().encrypt_blocks(
            self._counter_blocks(block_offset, nblocks)
        )
        return stream.tobytes()[:length]

    def block(self, index: int) -> bytes:
        """Keystream block ``index`` — Rivest's per-word mask ``E(key, i)``."""
        return self.keystream(16, block_offset=index)

    def word_stream(self, count: int):
        """Yield keystream blocks 0..count-1 one encryption call at a time.

        This is the faithful cost model of Rivest's AONT (§2): ``count``
        *separate* small-block encryption operations, versus the single
        bulk pass OAEP uses — the difference Figure 5 measures.  The bytes
        produced equal ``keystream(16 * count)``.
        """
        if count < 0:
            raise ParameterError(f"negative word count {count}")
        if self.backend == "openssl":
            # Deliberately *not* the ECB-of-counters kernel: this stream is
            # the faithful per-word cost model, and hardware CTR stepping a
            # zero word is the cheapest honest rendering of "one encryption
            # call per word" (mirroring what the pre-kernel code did).
            enc = Cipher(
                algorithms.AES(self.key), modes.CTR(b"\0" * 16)
            ).encryptor()
            zero = b"\0" * 16
            for _ in range(count):
                yield enc.update(zero)
        else:
            cipher = self._pure()
            for i in range(count):
                yield cipher.encrypt_blocks(self._counter_blocks(i, 1)).tobytes()


def ctr_keystream(key: bytes, length: int, block_offset: int = 0) -> bytes:
    """One-shot helper: ``AesCtr(key).keystream(length, block_offset)``."""
    return AesCtr(key).keystream(length, block_offset)


def mask_block(key: bytes, length: int) -> bytes:
    """The AONT mask generator ``G(h) = E(h, C)`` of Eq. (3).

    ``C`` is the constant (zero) block of ``length`` bytes; the result is
    its AES-CTR encryption under ``key``.  Deterministic in ``(key,
    length)``, which is what makes CAONT-RS convergent.
    """
    return ctr_keystream(key, length)


def mask_stack(
    keys: list[bytes], length: int, backend: str | None = None
) -> np.ndarray:
    """AONT masks ``G(key)`` for a slab of secrets, as a ``(B, length)`` stack.

    Row ``b`` equals ``mask_block(keys[b], length)``.  The per-key EVP
    setup is irreducible (each secret keys its own stream), but everything
    around it is amortised over the batch: the counter plaintext is built
    once, the shared ECB mode object is reused, and each mask is written
    straight into its row of one NumPy block via ``update_into`` — the
    one-shot AES-ECB-of-counters kernel that lifts the mask-generation
    ceiling on the batched CAONT-RS encode path.
    """
    if length < 0:
        raise ParameterError(f"negative mask length {length}")
    batch = len(keys)
    if batch == 0 or length == 0:
        return np.zeros((batch, length), dtype=np.uint8)
    nblocks = -(-length // 16)
    padded = nblocks * 16
    name = backend or _active_backend
    if name == "openssl" and nblocks <= _COUNTER_CACHE_BLOCKS:
        counters = _counter_bytes(0, nblocks)
        # ``update_into`` demands block_size - 1 slack beyond the payload.
        out = np.empty((batch, padded + 15), dtype=np.uint8)
        for row, key in enumerate(keys):
            if len(key) not in (16, 24, 32):
                raise CryptoError(
                    f"AES key must be 16/24/32 bytes, got {len(key)}"
                )
            enc = Cipher(algorithms.AES(key), _ECB).encryptor()
            enc.update_into(counters, out[row])
        return out[:, :length]
    # Pure backend, or masks too large for the counter cache: one
    # keystream call per key (which itself picks the best bulk path).
    out = np.empty((batch, length), dtype=np.uint8)
    for row, key in enumerate(keys):
        out[row] = np.frombuffer(
            AesCtr(key, backend=name).keystream(length), dtype=np.uint8
        )
    return out
