"""GF(256) matrix algebra: inversion, MDS constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError, ParameterError
from repro.gf.gf256 import gf_mul
from repro.gf.matrix import (
    cauchy_matrix,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_vec,
    identity_matrix,
    systematic_cauchy_matrix,
    systematic_vandermonde_matrix,
    vandermonde_matrix,
)


def random_matrix(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestMatMul:
    def test_identity_is_neutral(self):
        rng = np.random.default_rng(1)
        m = random_matrix(rng, 5, 5)
        assert np.array_equal(gf_mat_mul(identity_matrix(5), m), m)
        assert np.array_equal(gf_mat_mul(m, identity_matrix(5)), m)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ParameterError):
            gf_mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_single_entry(self):
        a = np.array([[7]], dtype=np.uint8)
        b = np.array([[9]], dtype=np.uint8)
        assert gf_mat_mul(a, b)[0, 0] == gf_mul(7, 9)


class TestMatVec:
    def test_matches_mat_mul(self):
        rng = np.random.default_rng(2)
        m = random_matrix(rng, 4, 3)
        data = random_matrix(rng, 3, 10)
        out = gf_mat_vec(m, data)
        expected = gf_mat_mul(m, data)
        assert np.array_equal(out, expected)

    def test_shape_check(self):
        with pytest.raises(ParameterError):
            gf_mat_vec(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))


class TestInversion:
    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
    def test_inverse_roundtrip(self, size, seed):
        rng = np.random.default_rng(seed)
        # Random matrices over GF(256) are overwhelmingly invertible; retry
        # a few seeds until one is.
        for attempt in range(10):
            m = random_matrix(rng, size, size)
            try:
                inv = gf_mat_inv(m)
            except CodingError:
                continue
            assert np.array_equal(gf_mat_mul(inv, m), identity_matrix(size))
            assert np.array_equal(gf_mat_mul(m, inv), identity_matrix(size))
            return
        pytest.skip("no invertible matrix found (astronomically unlikely)")

    def test_singular_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(CodingError):
            gf_mat_inv(m)

    def test_non_square_raises(self):
        with pytest.raises(ParameterError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))


class TestConstructions:
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12))
    def test_vandermonde_entries(self, rows, cols):
        from repro.gf.gf256 import gf_pow

        v = vandermonde_matrix(rows, cols)
        for i in range(rows):
            for j in range(cols):
                expected = gf_pow(i, j) if i else (1 if j == 0 else 0)
                assert v[i, j] == expected

    @pytest.mark.parametrize("builder", [systematic_vandermonde_matrix, systematic_cauchy_matrix])
    @pytest.mark.parametrize("n,k", [(4, 3), (6, 4), (10, 7), (20, 15), (5, 5)])
    def test_systematic_top_is_identity(self, builder, n, k):
        g = builder(n, k)
        assert g.shape == (n, k)
        assert np.array_equal(g[:k], identity_matrix(k))

    @pytest.mark.parametrize("builder", [systematic_vandermonde_matrix, systematic_cauchy_matrix])
    def test_mds_every_k_rows_invertible(self, builder):
        from itertools import combinations

        n, k = 6, 3
        g = builder(n, k)
        for rows in combinations(range(n), k):
            gf_mat_inv(g[list(rows)])  # must not raise

    def test_cauchy_rejects_overlapping_points(self):
        with pytest.raises(ParameterError):
            cauchy_matrix([1, 2], [2, 3])

    def test_cauchy_rejects_duplicates(self):
        with pytest.raises(ParameterError):
            cauchy_matrix([1, 1], [2, 3])

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            systematic_vandermonde_matrix(3, 0)
        with pytest.raises(ParameterError):
            vandermonde_matrix(300, 2)
