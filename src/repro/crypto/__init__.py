"""Cryptographic substrate.

The paper implements CDStore's cryptography with OpenSSL (§4): AES-256 for
the encryption function ``E`` inside the AONTs, and SHA-256 for convergent
hashes and deduplication fingerprints.  This package provides the same
primitives from scratch:

* :mod:`repro.crypto.aes` — AES-128/192/256 block cipher, implemented from
  the FIPS-197 specification with numpy-vectorised bulk rounds.
* :mod:`repro.crypto.ciphers` — CTR keystream / mask generation on top of
  the block cipher, with an optional fast backend using the host
  ``cryptography`` wheel (standing in for OpenSSL, exactly as the paper
  does) selected via :func:`set_aes_backend`.
* :mod:`repro.crypto.hashing` — SHA-256 helpers: convergent hash keys,
  share fingerprints, salted hashes.
* :mod:`repro.crypto.drbg` — a deterministic random byte generator used for
  reproducible workloads and for the *random* keys of the non-convergent
  baselines (AONT-RS, SSMS, RSSS).
"""

from repro.crypto.aes import AES
from repro.crypto.ciphers import (
    aes_backend_name,
    available_aes_backends,
    ctr_keystream,
    mask_block,
    set_aes_backend,
)
from repro.crypto.drbg import DRBG
from repro.crypto.hashing import (
    HASH_SIZE,
    fingerprint,
    hash_key,
    sha256,
)

__all__ = [
    "AES",
    "DRBG",
    "HASH_SIZE",
    "aes_backend_name",
    "available_aes_backends",
    "ctr_keystream",
    "fingerprint",
    "hash_key",
    "mask_block",
    "set_aes_backend",
    "sha256",
]
