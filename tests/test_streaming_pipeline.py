"""Streaming transfer pipeline: bounded slab queue + windowed restore.

Covers the ``pipeline_depth`` knob end to end: byte-identical degeneration
at depth 1, makespan clock accounting at one encode thread, per-window
restore failover (a cloud stalling mid-window, a corrupt share healed by a
spare), and the backpressure/release discipline of the lazy
:class:`~repro.client.workers.SlabbedShareSets`.
"""

from __future__ import annotations

import struct
import threading
import time
from concurrent.futures import Future

import pytest

from repro.chunking.fixed import FixedChunker
from repro.client.workers import SlabbedShareSets, plan_windows
from repro.cloud.network import SimClock, pipeline_makespan
from repro.crypto.drbg import DRBG
from repro.errors import CloudUnavailableError, ParameterError
from repro.system.cdstore import CDStoreSystem


def data_of(size: int, seed: str = "stream") -> bytes:
    return DRBG(seed).random_bytes(size)


def make_system(depth: int, threads: int = 1, n: int = 4, k: int = 3) -> CDStoreSystem:
    return CDStoreSystem(n=n, k=k, salt=b"org", threads=threads, pipeline_depth=depth)


def windowed_client(system: CDStoreSystem, window_bytes: int = 4096):
    client = system.client("alice", chunker=FixedChunker(4096))
    client.restore_window_bytes = window_bytes
    return client


def corrupt_share_payloads(backend, count: int) -> None:
    """Flip one byte inside the first ``count`` share payloads stored."""
    container_id = next(
        cid
        for cid in backend.list_keys("container-")
        if backend.get_object(cid)[4] == 1  # kind byte == KIND_SHARE
    )
    blob = bytearray(backend.get_object(container_id))
    pos = 9  # container header: u32 magic | u8 kind | u32 count
    for _ in range(count):
        keylen, paylen = struct.unpack_from(">II", blob, pos)
        pos += 8 + keylen
        blob[pos] ^= 0xFF
        pos += paylen
    backend.put_object(container_id, bytes(blob))


# ---------------------------------------------------------------------------
# depth=1 degenerates to the serial behaviour byte-identically
# ---------------------------------------------------------------------------


class TestDepthOneDegeneration:
    def test_stored_and_wire_bytes_identical_across_depths(self):
        payload = data_of(200_000)
        receipts, stored, restored = {}, {}, {}
        for depth in (1, 4):
            system = make_system(depth)
            client = windowed_client(system)
            receipts[depth] = client.upload("/f", payload)
            restored[depth] = client.download("/f")
            system.flush()
            stored[depth] = system.stored_bytes()
            system.close()
        assert restored[1] == restored[4] == payload
        assert stored[1] == stored[4]
        assert (
            receipts[1].wire_bytes_per_cloud == receipts[4].wire_bytes_per_cloud
        )
        assert (
            receipts[1].transferred_share_bytes
            == receipts[4].transferred_share_bytes
        )

    def test_depth1_restore_is_single_window_rpc(self):
        """depth=1 fetches the whole file in one fetch_shares RPC per
        server; a streaming engine with a small window issues several."""
        payload = data_of(60_000)
        calls = {}
        for depth in (1, 3):
            system = make_system(depth)
            client = windowed_client(system, window_bytes=4096)
            client.upload("/f", payload)
            counters = []
            for server in system.servers:
                original = server.fetch_shares
                counter = {"count": 0}

                def counting(fps, _orig=original, _c=counter):
                    _c["count"] += 1
                    return _orig(fps)

                server.fetch_shares = counting
                counters.append(counter)
            assert client.download("/f") == payload
            calls[depth] = [c["count"] for c in counters[: system.k]]
            system.close()
        assert all(count == 1 for count in calls[1])
        assert all(count > 1 for count in calls[3])

    def test_invalid_depth_rejected(self):
        with pytest.raises(ParameterError):
            make_system(0).client("alice")


# ---------------------------------------------------------------------------
# SimClock: streaming overlaps the clouds even at one encode thread
# ---------------------------------------------------------------------------


class TestStreamingClock:
    @staticmethod
    def _upload(depth: int):
        from repro.cloud.network import Link
        from repro.cloud.provider import CloudProvider

        clock = SimClock()
        clouds = [
            CloudProvider(name=f"cloud-{i}", uplink=Link(bw), downlink=Link(bw))
            for i, bw in enumerate([10.0, 20.0, 40.0, 80.0])
        ]
        system = CDStoreSystem(
            n=4, k=3, salt=b"org", clouds=clouds, threads=1,
            pipeline_depth=depth, clock=clock,
        )
        client = system.client("alice", chunker=FixedChunker(4096))
        receipt = client.upload("/f", data_of(100_000))
        system.close()
        return receipt, clock

    def test_streaming_upload_charges_makespan_at_one_thread(self):
        """pipeline_depth>1 overlaps the per-cloud uploads (wire time hides
        behind encoding) even with a single encode thread."""
        receipt, clock = self._upload(depth=4)
        assert receipt.sim_seconds == pytest.approx(
            max(receipt.seconds_per_cloud)
        )
        assert clock.now == pytest.approx(receipt.sim_seconds)

    def test_serial_upload_still_charges_sum(self):
        receipt, clock = self._upload(depth=1)
        assert receipt.sim_seconds == pytest.approx(
            sum(receipt.seconds_per_cloud)
        )

    def test_streaming_restore_clock_matches_whole_file_charge(self):
        """Windowed fetches must not double-charge the clock: per-slot
        window times sum to the canonical whole-file transfer time."""
        clocks = {}
        for depth in (1, 3):
            clock = SimClock()
            system = CDStoreSystem(
                n=4, k=3, salt=b"org", threads=1, pipeline_depth=depth,
                clock=clock,
            )
            client = windowed_client(system, window_bytes=8192)
            client.upload("/f", data_of(80_000))
            upload_now = clock.now
            assert client.download("/f")
            clocks[depth] = clock.now - upload_now
            system.close()
        # Serial charges the per-slot sum, streaming the makespan — and the
        # streamed restore must never charge more than the serial one.
        assert clocks[3] <= clocks[1]
        assert clocks[3] > 0


# ---------------------------------------------------------------------------
# per-window failover: stalls and corruption mid-restore
# ---------------------------------------------------------------------------


class TestWindowedRestoreFailover:
    def test_cloud_stalling_mid_window_fails_over_per_window(self):
        """A cloud that serves window 0 then stalls is replaced by a spare
        from the failing window onward; earlier windows stand."""
        system = make_system(depth=3)
        client = windowed_client(system, window_bytes=4096)
        payload = data_of(60_000)
        client.upload("/f", payload)

        victim = system.servers[1]
        original = victim.fetch_shares
        state = {"calls": 0}

        def stalling(fps):
            state["calls"] += 1
            if state["calls"] > 1:
                time.sleep(0.05)  # the stall, surfaced as a timeout error
                raise CloudUnavailableError("cloud stalled mid-window")
            return original(fps)

        victim.fetch_shares = stalling
        try:
            assert client.download("/f") == payload
        finally:
            victim.fetch_shares = original
        # The victim answered window 0 and was asked exactly once more
        # (the stalled window) before the spare took over for the rest.
        assert state["calls"] == 2
        system.close()

    def test_stall_with_no_spare_propagates(self):
        system = CDStoreSystem(
            n=3, k=3, salt=b"org", threads=1, pipeline_depth=3
        )
        client = windowed_client(system, window_bytes=4096)
        client.upload("/f", data_of(40_000))

        def dead(fps):
            raise CloudUnavailableError("stalled, no spare to take over")

        system.servers[2].fetch_shares = dead
        with pytest.raises(CloudUnavailableError):
            client.download("/f")
        system.close()

    def test_corrupt_share_in_window_healed_by_spare(self):
        """A corrupt share inside window i triggers the §3.2 widening for
        that window's secrets only, pulling the spare's shares."""
        system = make_system(depth=3)
        client = windowed_client(system, window_bytes=4096)
        payload = data_of(60_000)  # 15 secrets, 15 windows of 1
        client.upload("/f", payload)
        client.flush()

        # Corrupt two of server 0's stored shares (secrets land in early
        # windows) and drop the container cache so restores see the rot.
        corrupt_share_payloads(system.clouds[0].backend, count=2)
        system.servers[0].containers._cache.clear()

        spare = system.servers[3]
        original = spare.fetch_shares
        state = {"calls": 0}

        def counting(fps):
            state["calls"] += 1
            return original(fps)

        spare.fetch_shares = counting
        try:
            assert client.download("/f") == payload
        finally:
            spare.fetch_shares = original
        # The spare was consulted per corrupted secret — not for the whole
        # file (windows that decoded cleanly never touched it).
        assert state["calls"] == 2
        system.close()

    def test_promoted_spare_with_lying_entry_is_skipped(self):
        """Per-window failover cross-checks the spare's entry against the
        agreed (file_size, secret_count); a disagreeing spare is skipped
        and the error propagates when no other spare exists."""
        from repro.server.index import FileEntry

        system = make_system(depth=3)
        client = windowed_client(system, window_bytes=4096)
        payload = data_of(40_000)
        client.upload("/f", payload)

        # Tamper the only spare's file entry.
        spare = system.servers[3]
        key = spare._file_key("alice", client._lookup_key("/f"))
        entry = FileEntry.unpack(spare.index.get(key))
        entry.file_size += 1
        spare.index.put(key, entry.pack())

        def dead(fps):
            raise CloudUnavailableError("mid-window outage")

        system.servers[1].fetch_shares = dead
        with pytest.raises(CloudUnavailableError):
            client.download("/f")
        system.close()


# ---------------------------------------------------------------------------
# the bounded slab queue (lazy SlabbedShareSets)
# ---------------------------------------------------------------------------


class TestBoundedSlabQueue:
    @staticmethod
    def _lazy_view(spans, depth, consumers, log=None):
        def submit(start: int, end: int) -> Future:
            if log is not None:
                log.append((start, end))
            future: Future = Future()
            future.set_result(list(range(start, end)))
            return future

        return SlabbedShareSets(
            spans=spans, submit=submit, depth=depth, consumers=consumers
        )

    def test_submission_respects_depth(self):
        log: list[tuple[int, int]] = []
        spans = [(0, 2), (2, 4), (4, 6), (6, 8)]
        view = self._lazy_view(spans, depth=2, consumers=1, log=log)
        assert log == [(0, 2), (2, 4)]  # only depth slabs submitted eagerly
        with view.stream() as stream:
            seen = [seq for seq, _ in stream]
        assert seen == list(range(8))
        assert log == spans  # draining admitted the rest, in order

    def test_drained_slabs_release_memory(self):
        spans = [(0, 2), (2, 4)]
        view = self._lazy_view(spans, depth=1, consumers=1)
        with view.stream() as stream:
            list(stream)
        assert view._futures == [None, None]  # all slabs dropped

    def test_abandoned_consumer_unblocks_siblings(self):
        """A consumer dying mid-stream must release its claims so the
        other consumer can still pull every slab through the window."""
        spans = [(0, 1), (1, 2), (2, 3), (3, 4)]
        submitted: list[tuple[int, int]] = []

        def submit(start: int, end: int) -> Future:
            submitted.append((start, end))
            future: Future = Future()
            future.set_result([f"slab-{start}"])
            return future

        view = SlabbedShareSets(
            spans=spans, submit=submit, depth=1, consumers=2
        )

        def dying():
            with view.stream() as stream:
                for _seq, _item in stream:
                    raise RuntimeError("consumer died")

        with pytest.raises(RuntimeError):
            dying()

        done = threading.Event()
        results: list = []

        def survivor():
            with view.stream() as stream:
                results.extend(item for _seq, item in stream)
            done.set()

        worker = threading.Thread(target=survivor)
        worker.start()
        worker.join(timeout=5.0)
        assert done.is_set(), "surviving consumer deadlocked"
        assert results == [f"slab-{i}" for i in range(4)]
        assert submitted == spans

    def test_failing_submit_poisons_slab_instead_of_deadlocking(self):
        """A submit that raises (broken pool, full /dev/shm) must surface
        as the slab's error on every consumer — not leave the slot empty
        with the other cloud workers blocked on it forever."""
        spans = [(0, 1), (1, 2), (2, 3)]

        def submit(start: int, end: int) -> Future:
            if start == 1:
                raise OSError("no space left on device")
            future: Future = Future()
            future.set_result([f"slab-{start}"])
            return future

        view = SlabbedShareSets(spans=spans, submit=submit, depth=1, consumers=2)

        def consume() -> list:
            got: list = []
            with view.stream() as stream:
                for _seq, item in stream:
                    got.append(item)
            return got

        errors: list[BaseException] = []
        partials: list[list] = []

        def worker():
            try:
                partials.append(consume())
            except BaseException as exc:  # noqa: BLE001 - recording for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads), "consumer hung"
        assert len(errors) == 2 and all(
            isinstance(exc, OSError) for exc in errors
        )
        assert not partials

    def test_mixed_constructor_arguments_rejected(self):
        with pytest.raises(ParameterError):
            SlabbedShareSets(None, [])
        future: Future = Future()
        future.set_result(["x"])
        with pytest.raises(ParameterError):
            SlabbedShareSets([future], [(0, 1)], submit=lambda s, e: future)


# ---------------------------------------------------------------------------
# helpers: window planning and the flow-shop makespan
# ---------------------------------------------------------------------------


class TestPipelineHelpers:
    def test_plan_windows_covers_contiguously(self):
        windows = plan_windows([100] * 10, 250)
        assert windows[0][0] == 0 and windows[-1][1] == 10
        for (_, a_end), (b_start, _) in zip(windows, windows[1:]):
            assert a_end == b_start
        assert all(end - start <= 3 for start, end in windows)

    def test_plan_windows_oversized_item_gets_own_window(self):
        assert plan_windows([10, 999, 10, 10], 50) == [(0, 2), (2, 4)]
        assert plan_windows([999], 50) == [(0, 1)]
        assert plan_windows([], 50) == []

    def test_pipeline_makespan_bounds(self):
        encode = [1.0] * 8
        transfer = [0.5] * 8
        overlapped = pipeline_makespan([encode, transfer])
        serial = sum(encode) + sum(transfer)
        assert overlapped < serial
        assert overlapped >= max(sum(encode), sum(transfer))
        # One window degenerates to the serial stage sum.
        assert pipeline_makespan([[3.0], [2.0]]) == pytest.approx(5.0)
        assert pipeline_makespan([]) == 0.0
        with pytest.raises(ParameterError):
            pipeline_makespan([[1.0], [1.0, 2.0]])


# ---------------------------------------------------------------------------
# adaptive pipeline depth (pipeline_depth="auto")
# ---------------------------------------------------------------------------


class TestAdaptiveDepth:
    def test_choose_depth_formula_and_clamps(self):
        from repro.client.comm import choose_pipeline_depth

        # Wire-bound encoding: two slots give full overlap.
        assert choose_pipeline_depth(1.0, 1000.0) == 2
        # Encode outruns wire 2.4x: one extra slab per surplus window.
        assert choose_pipeline_depth(240.0, 100.0) == 3
        # Encode vastly faster: clamped at the ceiling.
        assert choose_pipeline_depth(10_000.0, 1.0) == 8
        # Custom clamp bounds are honoured.
        assert choose_pipeline_depth(10_000.0, 1.0, ceiling=4) == 4
        with pytest.raises(ParameterError):
            choose_pipeline_depth(0.0, 1.0)

    def test_auto_engine_probes_and_records_depth(self):
        system = make_system(depth="auto")
        client = windowed_client(system)
        receipt = client.upload("/f", data_of(40_000))
        assert isinstance(receipt.pipeline_depth, int)
        assert 2 <= receipt.pipeline_depth <= 8
        # The probe runs once; later uploads reuse the resolved depth.
        assert client.comm.effective_depth == receipt.pipeline_depth
        again = client.upload("/g", data_of(8_000, seed="other"))
        assert again.pipeline_depth == receipt.pipeline_depth
        assert client.download("/f") == data_of(40_000)
        system.close()

    def test_auto_engine_is_streaming_and_parallel(self):
        system = make_system(depth="auto")
        client = windowed_client(system)
        assert client.comm.adaptive
        assert client.comm.streaming
        assert client.comm.parallel
        system.close()

    def test_explicit_depth_wins_over_auto(self):
        system = make_system(depth="auto")
        client = system.client("bob", pipeline_depth=5, chunker=FixedChunker(4096))
        receipt = client.upload("/f", data_of(30_000))
        assert receipt.pipeline_depth == 5
        assert client.comm.effective_depth == 5
        system.close()

    def test_download_only_auto_engine_uses_fallback_depth(self):
        from repro.client.comm import _AUTO_FALLBACK_DEPTH

        system = make_system(depth=1)
        uploader = windowed_client(system)
        payload = data_of(30_000)
        uploader.upload("/f", payload)
        uploader.flush()
        restorer = system.client(
            "restorer", pipeline_depth="auto", chunker=FixedChunker(4096)
        )
        assert restorer.comm.effective_depth == _AUTO_FALLBACK_DEPTH
        system.close()

    def test_bogus_depth_values_rejected(self):
        for bad in (0, -3, "fast", 2.5, None):
            with pytest.raises(ParameterError):
                make_system(depth=bad).client("alice")
