"""System cost models and the Figure 9 sweeps (§5.6).

Scenario: an organisation takes weekly backups of ``weekly_bytes`` with a
retention of 26 weeks, so ``retention * weekly_bytes`` of logical data is
live at steady state.  Three systems are costed per month:

* **CDStore** — four S3 buckets hold the physical shares (logical shares
  divided by the deduplication ratio) plus file recipes; four EC2
  instances host the servers, each sized to keep its dedup indices in
  local storage;
* **AONT-RS multi-cloud** — same reliability/security (storage blowup
  n/k) but no deduplication and no server VMs;
* **single cloud** — no redundancy (blowup 1), keyed encryption, no
  deduplication.

The paper's headline: CDStore saves ~70 % against both at a 16 TB weekly
backup and 10x dedup ratio, the saving growing with backup size and dedup
ratio, with jagged curves where the cheapest viable EC2 instance switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costs.pricing import cheapest_instance_for, s3_monthly_cost
from repro.errors import ParameterError
from repro.server.messages import RecipeEntry

__all__ = [
    "CostBreakdown",
    "cdstore_monthly_cost",
    "aont_rs_monthly_cost",
    "single_cloud_monthly_cost",
    "cost_savings",
    "sweep_weekly_size",
    "sweep_dedup_ratio",
]

#: Average secret (chunk) size driving metadata volumes (§4.2).
AVG_SECRET_BYTES = 8192
#: Per-secret recipe entry at one cloud (fingerprint + secret size, §4.4).
RECIPE_ENTRY_BYTES = RecipeEntry.packed_size()
#: Share-index bytes per unique share: fingerprint key + container ref +
#: owner list (measured from the index entry codec at typical occupancy).
INDEX_ENTRY_BYTES = 150


@dataclass(frozen=True)
class CostBreakdown:
    """Monthly USD cost of one system configuration."""

    system: str
    storage_usd: float
    vm_usd: float
    instances: tuple[str, ...] = field(default=())

    @property
    def total_usd(self) -> float:
        return self.storage_usd + self.vm_usd


def _check(weekly_bytes: float, dedup_ratio: float, retention_weeks: int) -> None:
    if weekly_bytes <= 0:
        raise ParameterError(f"weekly_bytes must be positive, got {weekly_bytes}")
    if dedup_ratio < 1:
        raise ParameterError(f"dedup ratio must be >= 1, got {dedup_ratio}")
    if retention_weeks <= 0:
        raise ParameterError(f"retention must be positive, got {retention_weeks}")


def cdstore_monthly_cost(
    weekly_bytes: float,
    dedup_ratio: float = 10.0,
    n: int = 4,
    k: int = 3,
    retention_weeks: int = 26,
) -> CostBreakdown:
    """Monthly cost of CDStore at steady state."""
    _check(weekly_bytes, dedup_ratio, retention_weeks)
    logical = weekly_bytes * retention_weeks
    logical_shares = logical * n / k
    physical_shares = logical_shares / dedup_ratio
    # File recipes cover every secret of every retained backup (they do not
    # deduplicate — §5.6 notes their overhead grows with total backup size).
    recipes = logical / AVG_SECRET_BYTES * RECIPE_ENTRY_BYTES * n
    storage = s3_monthly_cost(physical_shares / n + recipes / n) * n

    # Per-server index: one entry per unique share stored at that cloud,
    # plus the intra-user mapping (same order of magnitude; folded into the
    # per-entry constant).
    unique_shares_per_cloud = physical_shares / n / (AVG_SECRET_BYTES / k)
    index_bytes = unique_shares_per_cloud * INDEX_ENTRY_BYTES
    instance = cheapest_instance_for(index_bytes)
    return CostBreakdown(
        system="cdstore",
        storage_usd=storage,
        vm_usd=instance.monthly_usd * n,
        instances=tuple([instance.name] * n),
    )


def aont_rs_monthly_cost(
    weekly_bytes: float,
    n: int = 4,
    k: int = 3,
    retention_weeks: int = 26,
) -> CostBreakdown:
    """AONT-RS multi-cloud baseline: blowup n/k, no dedup, no VMs."""
    _check(weekly_bytes, 1.0, retention_weeks)
    logical = weekly_bytes * retention_weeks
    stored = logical * n / k
    return CostBreakdown(
        system="aont-rs",
        storage_usd=s3_monthly_cost(stored / n) * n,
        vm_usd=0.0,
    )


def single_cloud_monthly_cost(
    weekly_bytes: float,
    retention_weeks: int = 26,
) -> CostBreakdown:
    """Single-cloud baseline: encrypted, no redundancy, no dedup."""
    _check(weekly_bytes, 1.0, retention_weeks)
    logical = weekly_bytes * retention_weeks
    return CostBreakdown(
        system="single-cloud",
        storage_usd=s3_monthly_cost(logical),
        vm_usd=0.0,
    )


@dataclass(frozen=True)
class SavingsRow:
    """One point of Figure 9: CDStore's saving vs the two baselines."""

    weekly_bytes: float
    dedup_ratio: float
    cdstore: CostBreakdown
    aont_rs: CostBreakdown
    single_cloud: CostBreakdown

    @property
    def saving_vs_aont_rs(self) -> float:
        return 1.0 - self.cdstore.total_usd / self.aont_rs.total_usd

    @property
    def saving_vs_single_cloud(self) -> float:
        return 1.0 - self.cdstore.total_usd / self.single_cloud.total_usd


def cost_savings(
    weekly_bytes: float,
    dedup_ratio: float = 10.0,
    n: int = 4,
    k: int = 3,
    retention_weeks: int = 26,
) -> SavingsRow:
    """Cost the three systems and compute CDStore's savings."""
    return SavingsRow(
        weekly_bytes=weekly_bytes,
        dedup_ratio=dedup_ratio,
        cdstore=cdstore_monthly_cost(
            weekly_bytes, dedup_ratio, n=n, k=k, retention_weeks=retention_weeks
        ),
        aont_rs=aont_rs_monthly_cost(
            weekly_bytes, n=n, k=k, retention_weeks=retention_weeks
        ),
        single_cloud=single_cloud_monthly_cost(
            weekly_bytes, retention_weeks=retention_weeks
        ),
    )


def sweep_weekly_size(
    weekly_tb_list: tuple[float, ...] = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256),
    dedup_ratio: float = 10.0,
    **kwargs,
) -> list[SavingsRow]:
    """Figure 9(a): savings vs weekly backup size at a fixed 10x dedup."""
    tb = 1000**4
    return [
        cost_savings(weekly_tb * tb, dedup_ratio, **kwargs)
        for weekly_tb in weekly_tb_list
    ]


def sweep_dedup_ratio(
    ratios: tuple[float, ...] = (1, 2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    weekly_tb: float = 16.0,
    **kwargs,
) -> list[SavingsRow]:
    """Figure 9(b): savings vs dedup ratio at a fixed 16 TB weekly size."""
    tb = 1000**4
    return [cost_savings(weekly_tb * tb, ratio, **kwargs) for ratio in ratios]
