"""Two-stage deduplication trace simulation (Figure 6).

Replays a chunk-level workload trace through the *accounting* of CDStore's
two-stage deduplication without materialising share bytes, so the paper's
terabyte-scale analysis (§5.4) runs in seconds:

* a secret already uploaded by the *same user* is removed by intra-user
  deduplication (not transferred);
* a transferred secret whose shares are already stored (by *any* user) is
  removed by inter-user deduplication (not stored).

Identical secrets yield identical per-cloud shares under convergent
dispersal (share ``i`` of secret ``X`` is pinned to cloud ``i``, §3.2), so
secret-level fingerprints decide share-level deduplication exactly, and all
byte counts are share bytes — secret size mapped through the codec's
``share_size`` and multiplied by ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.caont_rs import CAONTRS
from repro.dedup.stats import DedupStats
from repro.workloads.base import Workload

__all__ = ["WeeklyDedupRow", "TwoStageSimulator", "simulate_two_stage"]


@dataclass(frozen=True)
class WeeklyDedupRow:
    """One week's row of the Figure 6 data."""

    week: int
    intra_saving: float
    inter_saving: float
    cumulative_logical_data: int
    cumulative_logical_shares: int
    cumulative_transferred_shares: int
    cumulative_physical_shares: int


class TwoStageSimulator:
    """Replays snapshots and accumulates §5.4's four byte counters."""

    def __init__(self, n: int = 4, k: int = 3) -> None:
        self.n = n
        self.k = k
        self._codec = CAONTRS(n, k)
        self._share_size_cache: dict[int, int] = {}
        self._user_seen: dict[str, set[bytes]] = {}
        self._global_seen: set[bytes] = set()
        self.stats = DedupStats()

    def _share_size(self, secret_size: int) -> int:
        size = self._share_size_cache.get(secret_size)
        if size is None:
            size = self._codec.share_size(secret_size)
            self._share_size_cache[secret_size] = size
        return size

    def ingest_snapshot(self, snapshot) -> None:
        """Account one user-week backup."""
        seen = self._user_seen.setdefault(snapshot.user, set())
        for chunk in snapshot.chunks:
            share_bytes = self._share_size(chunk.size) * self.n
            self.stats.logical_data += chunk.size
            self.stats.logical_shares += share_bytes
            self.stats.secrets_total += 1
            self.stats.shares_total += self.n
            if chunk.fingerprint in seen:
                continue  # intra-user deduplicated
            seen.add(chunk.fingerprint)
            self.stats.transferred_shares += share_bytes
            self.stats.shares_transferred += self.n
            if chunk.fingerprint in self._global_seen:
                continue  # inter-user deduplicated
            self._global_seen.add(chunk.fingerprint)
            self.stats.physical_shares += share_bytes
            self.stats.shares_stored += self.n


def simulate_two_stage(
    workload: Workload, n: int = 4, k: int = 3
) -> list[WeeklyDedupRow]:
    """Run a workload through two-stage dedup accounting, week by week.

    Returns one :class:`WeeklyDedupRow` per week: that week's intra-/
    inter-user savings plus the cumulative sizes of the four data types —
    exactly the series plotted in Figures 6(a) and 6(b).
    """
    sim = TwoStageSimulator(n=n, k=k)
    rows: list[WeeklyDedupRow] = []
    for week in range(1, workload.weeks + 1):
        before = sim.stats.snapshot()
        for snapshot in workload.week_snapshots(week):
            sim.ingest_snapshot(snapshot)
        weekly = sim.stats.delta(before)
        rows.append(
            WeeklyDedupRow(
                week=week,
                intra_saving=weekly.intra_user_saving,
                inter_saving=weekly.inter_user_saving,
                cumulative_logical_data=sim.stats.logical_data,
                cumulative_logical_shares=sim.stats.logical_shares,
                cumulative_transferred_shares=sim.stats.transferred_shares,
                cumulative_physical_shares=sim.stats.physical_shares,
            )
        )
    return rows
