"""Plain-text table rendering for benchmark output.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and copy-paste friendly.
"""

from __future__ import annotations

__all__ = ["format_table", "format_row"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in str_rows)) if str_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_row(values: list, precision: int = 2) -> list[str]:
    """Format a mixed row with a fixed float precision."""
    return [
        f"{v:.{precision}f}" if isinstance(v, float) else str(v) for v in values
    ]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
