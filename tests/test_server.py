"""CDStore server: two-stage dedup semantics, indices, restore, GC."""

import pytest

from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.crypto.hashing import fingerprint
from repro.errors import CloudUnavailableError, NotFoundError, ProtocolError
from repro.server.index import DictIndex, LSMIndex
from repro.server.messages import FileManifest, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer


def make_server(index=None) -> CDStoreServer:
    cloud = CloudProvider("test", Link(100.0), Link(100.0))
    return CDStoreServer(server_id=0, cloud=cloud, index=index)


def upload_of(data: bytes, seq: int = 0) -> ShareUpload:
    return ShareUpload(
        meta=ShareMeta(
            fingerprint=fingerprint(data, "client"),
            share_size=len(data),
            secret_seq=seq,
            secret_size=len(data),
        ),
        data=data,
    )


class TestIntraUserDedup:
    def test_unknown_shares_not_duplicates(self):
        server = make_server()
        fps = [fingerprint(b"a", "client"), fingerprint(b"b", "client")]
        assert server.query_duplicates("alice", fps) == [False, False]

    def test_uploaded_share_becomes_known(self):
        server = make_server()
        upload = upload_of(b"share-data" * 50)
        server.upload_shares("alice", [upload])
        assert server.query_duplicates("alice", [upload.meta.fingerprint]) == [True]

    def test_dedup_state_is_per_user(self):
        """Side-channel defence: bob's query must not reflect alice's data."""
        server = make_server()
        upload = upload_of(b"alice-owned" * 30)
        server.upload_shares("alice", [upload])
        assert server.query_duplicates("bob", [upload.meta.fingerprint]) == [False]


class TestInterUserDedup:
    def test_same_share_stored_once(self):
        server = make_server()
        data = b"common-bytes" * 100
        server.upload_shares("alice", [upload_of(data)])
        stored_after_alice = server.stats.physical_shares
        server.upload_shares("bob", [upload_of(data)])
        assert server.stats.physical_shares == stored_after_alice
        assert server.stats.transferred_shares == 2 * len(data)
        assert server.stats.shares_stored == 1

    def test_server_recomputes_fingerprints(self):
        """A forged client fingerprint cannot alias another share."""
        server = make_server()
        data_a, data_b = b"a" * 100, b"b" * 100
        # bob claims data_b carries data_a's client fingerprint
        forged = ShareUpload(
            meta=ShareMeta(fingerprint(data_a, "client"), 100, 0, 100), data=data_b
        )
        server.upload_shares("bob", [forged])
        # Both contents must be distinguishable server-side: storing the
        # real data_a later still stores new bytes.
        server.upload_shares("alice", [upload_of(data_a)])
        assert server.stats.shares_stored == 2

    def test_size_mismatch_rejected(self):
        server = make_server()
        bad = ShareUpload(meta=ShareMeta(b"f" * 32, 10, 0, 10), data=b"not ten!")
        with pytest.raises(ProtocolError):
            server.upload_shares("alice", [bad])


class TestFinalizeAndRestore:
    def _store_file(self, server, user, key, payloads):
        uploads = [upload_of(p, seq=i) for i, p in enumerate(payloads)]
        server.upload_shares(user, uploads)
        manifest = FileManifest(
            lookup_key=key,
            path_share=b"path-share",
            file_size=sum(len(p) for p in payloads),
            secret_count=len(payloads),
        )
        server.finalize_file(user, manifest, [u.meta for u in uploads])
        return uploads

    def test_recipe_roundtrip(self):
        server = make_server()
        payloads = [b"one" * 40, b"two" * 40, b"three" * 40]
        self._store_file(server, "alice", b"key1", payloads)
        recipe = server.get_recipe("alice", b"key1")
        assert len(recipe) == 3
        shares = server.fetch_shares([e.fingerprint for e in recipe])
        assert [shares[e.fingerprint] for e in recipe] == payloads

    def test_file_entry_fields(self):
        server = make_server()
        self._store_file(server, "alice", b"key1", [b"data" * 30])
        entry = server.get_file_entry("alice", b"key1")
        assert entry.file_size == 120
        assert entry.secret_count == 1
        assert entry.path_share == b"path-share"

    def test_authorisation_by_user(self):
        server = make_server()
        self._store_file(server, "alice", b"key1", [b"private" * 20])
        with pytest.raises(NotFoundError):
            server.get_file_entry("bob", b"key1")

    def test_finalize_without_upload_raises(self):
        server = make_server()
        manifest = FileManifest(b"k", b"p", 10, 1)
        meta = ShareMeta(b"f" * 32, 10, 0, 10)
        with pytest.raises(ProtocolError):
            server.finalize_file("alice", manifest, [meta])

    def test_fetch_unknown_share_raises(self):
        server = make_server()
        with pytest.raises(NotFoundError):
            server.fetch_shares([b"f" * 32])

    def test_refcounts_accumulate_per_reference(self):
        server = make_server()
        data = b"shared-chunk" * 30
        uploads = [upload_of(data, seq=0)]
        server.upload_shares("alice", uploads)
        # File references the same share twice (duplicate secrets in file).
        metas = [
            ShareMeta(uploads[0].meta.fingerprint, len(data), 0, len(data)),
            ShareMeta(uploads[0].meta.fingerprint, len(data), 1, len(data)),
        ]
        manifest = FileManifest(b"k", b"p", 2 * len(data), 2)
        server.finalize_file("alice", manifest, metas)
        recipe = server.get_recipe("alice", b"k")
        assert recipe[0].fingerprint == recipe[1].fingerprint


class TestAvailability:
    def test_operations_fail_when_cloud_down(self):
        server = make_server()
        server.cloud.fail()
        with pytest.raises(CloudUnavailableError):
            server.query_duplicates("alice", [b"f" * 32])
        with pytest.raises(CloudUnavailableError):
            server.upload_shares("alice", [upload_of(b"x" * 10)])
        with pytest.raises(CloudUnavailableError):
            server.get_file_entry("alice", b"k")


class TestDeletionAndGC:
    def test_delete_file_orphans_shares(self):
        server = make_server()
        uploads = [upload_of(b"doomed" * 50, seq=0)]
        server.upload_shares("alice", uploads)
        manifest = FileManifest(b"k", b"p", 300, 1)
        server.finalize_file("alice", manifest, [u.meta for u in uploads])
        orphaned = server.delete_file("alice", b"k")
        assert orphaned == 1
        with pytest.raises(NotFoundError):
            server.get_file_entry("alice", b"k")

    def test_shared_share_survives_one_users_delete(self):
        server = make_server()
        data = b"shared" * 50
        for user in ("alice", "bob"):
            uploads = [upload_of(data, seq=0)]
            server.upload_shares(user, uploads)
            manifest = FileManifest(b"k-" + user.encode(), b"p", 300, 1)
            server.finalize_file(user, manifest, [u.meta for u in uploads])
        assert server.delete_file("alice", b"k-alice") == 0  # bob still owns it
        recipe = server.get_recipe("bob", b"k-bob")
        assert server.fetch_shares([recipe[0].fingerprint])

    def test_gc_reclaims_orphaned_bytes(self):
        server = make_server()
        keep = upload_of(b"keep" * 100, seq=0)
        drop = upload_of(b"drop" * 100, seq=0)
        server.upload_shares("alice", [keep, drop])
        manifest = FileManifest(b"keeper", b"p", 400, 1)
        server.finalize_file("alice", manifest, [keep.meta])
        server.flush()
        freed = server.collect_garbage()
        assert freed >= 400
        # Kept file still restorable after container rewrite.
        recipe = server.get_recipe("alice", b"keeper")
        shares = server.fetch_shares([recipe[0].fingerprint])
        assert shares[recipe[0].fingerprint] == b"keep" * 100

    def test_gc_with_nothing_to_do(self):
        server = make_server()
        uploads = [upload_of(b"live" * 50, seq=0)]
        server.upload_shares("alice", uploads)
        manifest = FileManifest(b"k", b"p", 200, 1)
        server.finalize_file("alice", manifest, [u.meta for u in uploads])
        server.flush()
        assert server.collect_garbage() == 0


class TestLSMBackedIndex:
    def test_server_on_lsm_index(self, tmp_path):
        server = make_server(index=LSMIndex(tmp_path / "idx"))
        uploads = [upload_of(b"durable" * 40, seq=0)]
        server.upload_shares("alice", uploads)
        manifest = FileManifest(b"k", b"p", 280, 1)
        server.finalize_file("alice", manifest, [u.meta for u in uploads])
        recipe = server.get_recipe("alice", b"k")
        shares = server.fetch_shares([recipe[0].fingerprint])
        assert shares[recipe[0].fingerprint] == b"durable" * 40
        server.index.close()

    def test_dict_index_items_prefix(self):
        index = DictIndex()
        index.put(b"a1", b"x")
        index.put(b"b1", b"y")
        assert dict(index.items(b"a")) == {b"a1": b"x"}
        index.delete(b"a1")
        assert dict(index.items()) == {b"b1": b"y"}
