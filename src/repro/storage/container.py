"""Container management (§4.5).

The container module maintains two kinds of containers at the storage
backend: *share containers* holding globally-unique shares and *recipe
containers* holding file recipes.  Containers are capped at 4 MB — except
that an oversized file recipe is kept whole in its own container rather
than split, "to reduce I/Os".

Two I/O optimisations from the paper are implemented:

* **per-user write buffers** — shares/recipes are buffered per user so
  "each container contains only the data of a single user", retaining the
  spatial locality deduplicated restores rely on [62];
* an **LRU container cache** holding the most recently accessed containers
  to cut backend reads.

Container wire format::

    u32 magic | u8 kind | u32 count | count * (u32 keylen | u32 len | key | payload)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import NotFoundError, ParameterError, StorageError
from repro.lsm.cache import LRUCache
from repro.storage.backend import StorageBackend

__all__ = ["CONTAINER_CAP", "Container", "ContainerManager", "ContainerRef"]

#: Maximum container payload (4 MB, §4.5).
CONTAINER_CAP = 4 << 20

_MAGIC = 0xCD57043E
_HEADER = struct.Struct(">IBI")
_ENTRY = struct.Struct(">II")

KIND_SHARE = 1
KIND_RECIPE = 2
_KINDS = {KIND_SHARE, KIND_RECIPE}


@dataclass(frozen=True)
class ContainerRef:
    """Location of one entry inside a container.

    The share index stores one of these per unique share (§4.4: each entry
    "stores the reference to the container that holds the share").
    """

    container_id: str
    entry_index: int

    def pack(self) -> bytes:
        cid = self.container_id.encode("ascii")
        return struct.pack(">HI", len(cid), self.entry_index) + cid

    @classmethod
    def unpack(cls, blob: bytes) -> "ContainerRef":
        if len(blob) < 6:
            raise StorageError("ContainerRef blob truncated")
        cid_len, entry = struct.unpack_from(">HI", blob)
        if len(blob) < 6 + cid_len:
            raise StorageError("ContainerRef id truncated")
        try:
            cid = blob[6 : 6 + cid_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise StorageError(f"ContainerRef id not ASCII: {exc}") from exc
        return cls(container_id=cid, entry_index=entry)


class Container:
    """An in-memory container: an ordered list of (key, payload) entries."""

    def __init__(self, kind: int) -> None:
        if kind not in _KINDS:
            raise ParameterError(f"unknown container kind {kind}")
        self.kind = kind
        self.entries: list[tuple[bytes, bytes]] = []
        self.payload_bytes = 0

    def add(self, key: bytes, payload: bytes) -> int:
        """Append an entry; returns its index within the container."""
        self.entries.append((key, payload))
        self.payload_bytes += len(key) + len(payload)
        return len(self.entries) - 1

    @property
    def full(self) -> bool:
        return self.payload_bytes >= CONTAINER_CAP

    def serialize(self) -> bytes:
        parts = [_HEADER.pack(_MAGIC, self.kind, len(self.entries))]
        for key, payload in self.entries:
            parts.append(_ENTRY.pack(len(key), len(payload)))
            parts.append(key)
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "Container":
        if len(blob) < _HEADER.size:
            raise StorageError("container blob truncated")
        magic, kind, count = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise StorageError("bad container magic")
        container = cls(kind)
        pos = _HEADER.size
        for _ in range(count):
            if pos + _ENTRY.size > len(blob):
                raise StorageError("container entry header truncated")
            keylen, paylen = _ENTRY.unpack_from(blob, pos)
            pos += _ENTRY.size
            if pos + keylen + paylen > len(blob):
                raise StorageError("container entry body truncated")
            key = blob[pos : pos + keylen]
            pos += keylen
            payload = blob[pos : pos + paylen]
            pos += paylen
            container.add(key, payload)
        return container


class ContainerManager:
    """Buffers, writes, caches and reads containers at one backend.

    Parameters
    ----------
    backend:
        The cloud's object store.
    cache_bytes:
        Capacity of the LRU container cache (default 32 MB).
    """

    def __init__(self, backend: StorageBackend, cache_bytes: int = 32 << 20) -> None:
        self.backend = backend
        self._cache = LRUCache(cache_bytes, size_of=len)
        # Per-(user, kind) open write buffers: single-user containers (§4.5).
        self._buffers: dict[tuple[str, int], Container] = {}
        self._buffer_ids: dict[tuple[str, int], str] = {}
        self._next_id = 0
        self._restore_next_id()

    def _restore_next_id(self) -> None:
        keys = self.backend.list_keys("container-")
        for key in keys:
            try:
                self._next_id = max(self._next_id, int(key.split("-")[1]) + 1)
            except (IndexError, ValueError):
                continue

    def _new_container_id(self) -> str:
        cid = f"container-{self._next_id:010d}"
        self._next_id += 1
        return cid

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, user_id: str, kind: int, key: bytes, payload: bytes) -> ContainerRef:
        """Buffer one entry for ``user_id``; returns its future location.

        The entry lands in the user's open container, which is sealed and
        written to the backend once it reaches the 4 MB cap.  An oversized
        recipe bypasses the cap and is written alone in its own container
        (§4.5 "we keep the file recipe in a single container and allow the
        container to go beyond 4MB").
        """
        if kind not in _KINDS:
            raise ParameterError(f"unknown container kind {kind}")
        if kind == KIND_RECIPE and len(payload) >= CONTAINER_CAP:
            solo = Container(kind)
            solo.add(key, payload)
            cid = self._seal(solo)
            return ContainerRef(container_id=cid, entry_index=0)
        buf_key = (user_id, kind)
        container = self._buffers.get(buf_key)
        if container is None:
            container = Container(kind)
            self._buffers[buf_key] = container
            self._buffer_ids[buf_key] = self._new_container_id()
        entry = container.add(key, payload)
        ref = ContainerRef(
            container_id=self._buffer_ids[buf_key], entry_index=entry
        )
        if container.full:
            self._seal(container, self._buffer_ids[buf_key])
            del self._buffers[buf_key]
            del self._buffer_ids[buf_key]
        return ref

    def _seal(self, container: Container, cid: str | None = None) -> str:
        cid = cid or self._new_container_id()
        blob = container.serialize()
        self.backend.put_object(cid, blob)
        self._cache.put(cid, blob)
        return cid

    def flush(self) -> None:
        """Seal and write every open buffer (end of an upload session)."""
        for buf_key, container in list(self._buffers.items()):
            self._seal(container, self._buffer_ids[buf_key])
            del self._buffers[buf_key]
            del self._buffer_ids[buf_key]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _load(self, container_id: str) -> bytes:
        blob = self._cache.get(container_id)
        if blob is None:
            try:
                blob = self.backend.get_object(container_id)
            except NotFoundError:
                # The entry may still sit in an unflushed buffer.
                for buf_key, cid in self._buffer_ids.items():
                    if cid == container_id:
                        return self._buffers[buf_key].serialize()
                raise
            self._cache.put(container_id, blob)
        return blob

    def read_entry(
        self, ref: ContainerRef, bypass_cache: bool = False
    ) -> tuple[bytes, bytes]:
        """Fetch one ``(key, payload)`` entry by reference."""
        container = self.read_container(ref.container_id, bypass_cache=bypass_cache)
        try:
            return container.entries[ref.entry_index]
        except IndexError:
            raise NotFoundError(
                f"entry {ref.entry_index} not in container {ref.container_id}"
            ) from None

    def read_container(self, container_id: str, bypass_cache: bool = False) -> Container:
        """Fetch a whole container (restore path: spatial locality).

        ``bypass_cache=True`` forces a backend read and refreshes the
        cache — integrity scrubbing must see the bytes actually stored,
        not a cached pre-corruption copy.
        """
        if bypass_cache:
            blob = self.backend.get_object(container_id)
            self._cache.put(container_id, blob)
            return Container.deserialize(blob)
        return Container.deserialize(self._load(container_id))

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the container cache."""
        return self._cache.hits, self._cache.misses
