"""Fixture proxy: sends ping/shadow frames, expects the ok response."""

import wire


def ping(sock):
    sock.sendall(bytes([wire.T_PING]))
    reply = sock.recv(1)
    return reply[0] in (wire.R_OK, wire.T_SHADOW)
