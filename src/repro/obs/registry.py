"""Process-wide metrics registry: counters, gauges, latency histograms.

Design constraints, in order:

1. **Hot-path cost.**  Metrics are incremented inside the WAL append
   loop, the dispatcher, and the per-window restore path; the bench gate
   (``micro.obs_enabled_over_disabled``) requires instrumented ingest +
   restore to stay within 5% of uninstrumented.  Counters and histograms
   therefore keep **per-thread cells**: an increment touches only the
   calling thread's own dict — no lock, no CAS, no cross-thread cache
   traffic — and only a *new thread's first touch* of a metric takes the
   registry lock to publish its cell table.  Reads (snapshots) sum
   across the published tables; under the GIL a point read of another
   thread's dict is safe, so readers never block writers.
2. **Thread safety.**  Structural state (the metric table, the list of
   published per-thread cell tables, gauge values) mutates only under a
   lock, declared via ``GUARDED_BY`` so ``repro analyze`` (LOCK-001) and
   the runtime lock witness both see the discipline.
3. **Snapshot consistency.**  ``snapshot()`` returns a versioned,
   JSON-safe dict (:data:`SNAPSHOT_VERSION`) — the payload of the
   ``T_OBS_STATS`` wire frame and the input to
   :func:`render_prometheus`.

Metric names use Prometheus conventions (``[a-z_]+``, ``_total`` suffix
on counters, ``_seconds`` on latency histograms) so the text exposition
needs no name mangling.  Registration is idempotent: asking for an
existing name returns the existing metric (layers register at import
time and must not fight over who was first); re-registering under a
different *kind* is a :class:`~repro.errors.ParameterError`.
"""

from __future__ import annotations

import threading

from repro.analysis.annotations import guarded_by, requires_lock
from repro.errors import ParameterError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_VERSION",
    "render_prometheus",
]

#: Version stamp carried by every :meth:`MetricsRegistry.snapshot` (and
#: therefore every ``R_OBS_STATS`` payload).  Bump when the snapshot
#: shape changes; consumers must check it before interpreting the dict.
SNAPSHOT_VERSION = 1

#: Default histogram boundaries for latency metrics, in seconds.  Spans
#: 0.5 ms .. 10 s — fsync group commits sit in the low milliseconds,
#: whole-window restores in the hundreds; the +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of one label set (sorted name/value pairs)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_text(key: tuple) -> str:
    """JSON-safe rendering of a label key: ``"a=1,b=2"`` (``""`` for none)."""
    return ",".join(f"{name}={value}" for name, value in key)


class _Metric:
    """Shared shell: name, help text, and the per-thread cell machinery.

    Each thread owns a private ``dict[label_key, cell]`` reached through
    ``threading.local`` — the lock-free fast path.  The dict itself is
    *published* (appended to ``_tables``) exactly once per thread, under
    the lock, so readers can find it.  Cells of finished threads stay
    published — counters are cumulative, so their contributions must
    outlive the thread.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the published
    #: table list mutates only under ``_lock``; the per-thread dicts it
    #: holds are single-writer by construction.
    GUARDED_BY = guarded_by(_tables="_lock")

    kind = "metric"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help_text
        self._registry = registry
        self._lock = threading.Lock()
        self._tables: list[dict] = []
        self._local = threading.local()

    def _cells(self) -> dict:
        """This thread's cell table, publishing it on first touch."""
        cells = getattr(self._local, "cells", None)
        if cells is None:
            cells = self._local.cells = {}
            with self._lock:
                self._tables.append(cells)
        return cells

    @requires_lock("_lock")
    def _merged(self) -> dict:
        """Sum the published per-thread tables (caller holds ``_lock``).

        ``list(table.items())`` iterates in C without releasing the GIL,
        so a writer thread cannot interleave mid-snapshot of one table.
        """
        merged: dict = {}
        for table in self._tables:
            for key, value in list(table.items()):
                merged[key] = merged.get(key, 0) + value
        return merged


class Counter(_Metric):
    """Monotonic counter; ``inc`` is the lock-free per-thread fast path."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        cells = self._cells()
        key = _label_key(labels)
        cells[key] = cells.get(key, 0) + amount

    def value(self, **labels) -> int | float:
        key = _label_key(labels)
        with self._lock:
            return self._merged().get(key, 0)

    def collect(self) -> dict[str, int | float]:
        with self._lock:
            return {_key_text(key): value for key, value in self._merged().items()}


class Gauge(_Metric):
    """Point-in-time value; set/add take the lock (gauges are off the
    hot path — queue depths, in-flight counts, cache occupancy)."""

    kind = "gauge"

    #: Gauges need cross-thread read-modify-write (several worker threads
    #: inc/dec one in-flight count), so their cells live in one shared
    #: table under the metric lock instead of per-thread tables.
    GUARDED_BY = guarded_by(_tables="_lock", _values="_lock")

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help_text, registry)
        self._values: dict[tuple, float] = {}

    def set(self, value: int | float, **labels) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = value

    def add(self, amount: int | float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def inc(self, amount: int | float = 1, **labels) -> None:
        self.add(amount, **labels)

    def dec(self, amount: int | float = 1, **labels) -> None:
        self.add(-amount, **labels)

    def value(self, **labels) -> int | float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def collect(self) -> dict[str, int | float]:
        with self._lock:
            return {_key_text(key): value for key, value in self._values.items()}


class Histogram(_Metric):
    """Fixed-bucket histogram; ``observe`` is the lock-free fast path.

    Each per-thread cell is a flat list: one cumulative-count slot per
    finite bucket boundary, one +Inf slot, then the running sum and the
    observation count — a single allocation per (thread, label set).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, registry)
        if not buckets or list(buckets) != sorted(buckets):
            raise ParameterError(
                f"histogram {name!r} buckets must be a sorted non-empty sequence"
            )
        self.buckets: tuple[float, ...] = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        cells = self._cells()
        key = _label_key(labels)
        cell = cells.get(key)
        if cell is None:
            # +Inf slot, sum, count appended after the finite buckets.
            cell = cells[key] = [0] * (len(self.buckets) + 3)
        # Linear scan: bucket counts are small (≤ ~16) and the common
        # case (fast operations) exits within the first few boundaries.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell[i] += 1
                break
        else:
            cell[len(self.buckets)] += 1  # +Inf
        cell[-2] += value
        cell[-1] += 1

    @requires_lock("_lock")
    def _merged(self) -> dict:
        merged: dict = {}
        width = len(self.buckets) + 3
        for table in self._tables:
            for key, cell in list(table.items()):
                into = merged.get(key)
                if into is None:
                    into = merged[key] = [0] * width
                snap = list(cell)
                for i, v in enumerate(snap):
                    into[i] += v
        return merged

    def counts(self, **labels) -> list[int]:
        """Per-bucket counts (finite buckets then +Inf), non-cumulative."""
        key = _label_key(labels)
        with self._lock:
            cell = self._merged().get(key)
        if cell is None:
            return [0] * (len(self.buckets) + 1)
        return [int(v) for v in cell[: len(self.buckets) + 1]]

    def observations(self, **labels) -> int:
        key = _label_key(labels)
        with self._lock:
            cell = self._merged().get(key)
        return int(cell[-1]) if cell is not None else 0

    def collect(self) -> dict[str, dict]:
        with self._lock:
            merged = self._merged()
        out: dict[str, dict] = {}
        n = len(self.buckets)
        for key, cell in merged.items():
            out[_key_text(key)] = {
                "buckets": list(self.buckets),
                "counts": [int(v) for v in cell[: n + 1]],
                "sum": float(cell[-2]),
                "count": int(cell[-1]),
            }
        return out


class MetricsRegistry:
    """Named metrics, one instance per process (usually :data:`REGISTRY`).

    ``enabled`` is the global kill switch the overhead benchmark (and
    ``ObsSpec(enabled=False)``) flips: a disabled registry's metrics are
    cheap no-ops, but stay registered so the exposition shape is stable.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the name → metric
    #: table mutates only under ``_lock``.
    GUARDED_BY = guarded_by(_metrics="_lock")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, name: str, factory, kind: str) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ParameterError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = self._metrics[name] = factory()
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help_text, self), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help_text, self), "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_text, self, buckets), "histogram"
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Versioned, JSON-safe dump of every metric (the wire payload)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict = {
            "version": SNAPSHOT_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for metric in metrics:
            section = out[metric.kind + "s"]
            section[metric.name] = metric.collect()
        return out

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot(), help_texts=self._help_texts())

    def _help_texts(self) -> dict[str, str]:
        with self._lock:
            return {name: m.help for name, m in self._metrics.items()}


def _prom_labels(key_text: str) -> str:
    if not key_text:
        return ""
    pairs = [pair.split("=", 1) for pair in key_text.split(",")]
    inner = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + inner + "}"


def render_prometheus(snapshot: dict, help_texts: dict[str, str] | None = None) -> str:
    """Prometheus text exposition of one :meth:`MetricsRegistry.snapshot`.

    Works on any snapshot dict (including one decoded from an
    ``R_OBS_STATS`` frame), so ``repro stats --prom`` renders a remote
    server's metrics without a registry object in hand.
    """
    help_texts = help_texts or {}
    lines: list[str] = []

    def header(name: str, kind: str) -> None:
        text = help_texts.get(name)
        if text:
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        header(name, "counter")
        for key_text, value in sorted(snapshot["counters"][name].items()):
            lines.append(f"{name}{_prom_labels(key_text)} {value}")
    for name in sorted(snapshot.get("gauges", {})):
        header(name, "gauge")
        for key_text, value in sorted(snapshot["gauges"][name].items()):
            lines.append(f"{name}{_prom_labels(key_text)} {value}")
    for name in sorted(snapshot.get("histograms", {})):
        header(name, "histogram")
        for key_text, hist in sorted(snapshot["histograms"][name].items()):
            cumulative = 0
            for bound, count in zip(hist["buckets"], hist["counts"]):
                cumulative += count
                le = _prom_labels(
                    (key_text + "," if key_text else "") + f"le={bound}"
                )
                lines.append(f"{name}_bucket{le} {cumulative}")
            cumulative += hist["counts"][len(hist["buckets"])]
            le = _prom_labels((key_text + "," if key_text else "") + "le=+Inf")
            lines.append(f"{name}_bucket{le} {cumulative}")
            labels = _prom_labels(key_text)
            lines.append(f"{name}_sum{labels} {hist['sum']}")
            lines.append(f"{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry every layer instruments against.
REGISTRY = MetricsRegistry()
