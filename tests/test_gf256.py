"""Field axioms and kernel correctness for GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.gf.gf256 import (
    FIELD_SIZE,
    GF256,
    gf_add,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_mul,
    gf_mul_bytes,
    gf_mul_bytes_into,
    gf_poly_eval,
    gf_poly_eval_bytes,
    gf_pow,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutes(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements)
    def test_addition_self_inverse(self, a):
        assert gf_add(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutes(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associates(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a


class TestScalarOps:
    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_log_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_log(0)

    @given(nonzero)
    def test_exp_log_roundtrip(self, a):
        assert gf_exp(gf_log(a)) == a

    @given(nonzero, st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_multiplication(self, a, e):
        if e >= 0:
            expected = 1
            for _ in range(e):
                expected = gf_mul(expected, a)
        else:
            expected = 1
            inv = gf_inv(a)
            for _ in range(-e):
                expected = gf_mul(expected, inv)
        assert gf_pow(a, e) == expected

    def test_pow_zero_base(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)

    def test_generator_has_full_order(self):
        seen = set()
        for i in range(FIELD_SIZE - 1):
            seen.add(gf_exp(i))
        assert len(seen) == FIELD_SIZE - 1


class TestBulkKernels:
    @given(elements, st.binary(min_size=0, max_size=300))
    def test_mul_bytes_matches_scalar(self, coeff, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        out = gf_mul_bytes(coeff, arr)
        for i, byte in enumerate(data):
            assert out[i] == gf_mul(coeff, byte)

    def test_mul_bytes_rejects_bad_coeff(self):
        with pytest.raises(ParameterError):
            gf_mul_bytes(256, np.zeros(4, dtype=np.uint8))

    @given(elements, st.binary(min_size=1, max_size=100))
    def test_mul_bytes_into_accumulates(self, coeff, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        out = np.zeros(len(data), dtype=np.uint8)
        gf_mul_bytes_into(coeff, arr, out)
        gf_mul_bytes_into(coeff, arr, out)
        assert not out.any(), "adding the same product twice must cancel"

    @given(st.lists(elements, min_size=1, max_size=6), elements)
    def test_poly_eval_horner(self, coeffs, x):
        expected = 0
        for degree, coeff in enumerate(coeffs):
            expected ^= gf_mul(coeff, gf_pow(x, degree))
        assert gf_poly_eval(coeffs, x) == expected

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=32), elements)
    def test_poly_eval_bytes_matches_scalar(self, degree, width, x):
        rows = np.arange(degree * width, dtype=np.uint64) % 251
        rows = rows.astype(np.uint8).reshape(degree, width)
        out = gf_poly_eval_bytes(rows, x)
        for col in range(width):
            assert out[col] == gf_poly_eval([int(rows[d, col]) for d in range(degree)], x)

    def test_namespace_object(self):
        assert GF256.mul(3, 7) == gf_mul(3, 7)
        assert GF256.add(3, 7) == 3 ^ 7
        assert GF256.order == 256
