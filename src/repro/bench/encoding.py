"""Encoding-speed experiments (Figure 5, §5.3).

The paper creates 2 GB of random in-memory data, chunks it with the 8 KB
variable-size chunker, encodes every secret into shares, and reports
``original bytes / total encode time``.  These drivers do the same with a
configurable data size (pure Python needs smaller defaults; the *relative*
ordering CAONT-RS > {AONT-RS, CAONT-RS-Rivest} is the reproduced claim).

Threading note (documented deviation): §4.6 parallelises encoding at the
secret level, and the paper's C++ prototype scales near-linearly to four
threads.  CPython cannot reproduce that: although hashlib and the
OpenSSL-backed cipher release the GIL, the Python-level share bookkeeping
between those calls is serialised, and GIL hand-offs between threads make
multi-threaded encoding *slower* than single-threaded at the paper's 8 KB
secret size.  The harness therefore measures and prints the thread sweep
faithfully (so the deviation is visible) but asserts only the
hardware-independent Figure 5 claim — the codec ordering.  The thread-
scaling *model* used by the transfer experiments
(:meth:`repro.cloud.testbed.PerformanceModel.scaled_threads`) follows the
paper's measured scaling instead.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.chunking.rabin import RabinChunker
from repro.crypto.drbg import DRBG
from repro.sharing.base import SecretSharingScheme
from repro.sharing.registry import create_scheme

__all__ = ["EncodingResult", "encoding_speed", "sweep_threads", "sweep_n"]

#: The three codecs Figure 5 compares.
FIGURE5_SCHEMES = ("caont-rs", "aont-rs", "caont-rs-rivest")


@dataclass(frozen=True)
class EncodingResult:
    """One measured encoding configuration."""

    scheme: str
    n: int
    k: int
    threads: int
    data_bytes: int
    seconds: float

    @property
    def mbps(self) -> float:
        """Encoding speed in MB/s of original data (the Figure 5 metric)."""
        return self.data_bytes / 1e6 / self.seconds if self.seconds else float("inf")


def _make_secrets(data_bytes: int, seed: str = "fig5") -> list[bytes]:
    """Variable-size chunks of random data (8 KB average, §5.3)."""
    data = DRBG(seed).random_bytes(data_bytes)
    return [chunk.data for chunk in RabinChunker().chunk_bytes(data)]


def _encode_all(codec: SecretSharingScheme, secrets: list[bytes], threads: int) -> float:
    def encode_slab(slab: list[bytes]) -> None:
        for secret in slab:
            codec.split(secret)

    start = time.perf_counter()
    if threads == 1:
        encode_slab(secrets)
    else:
        # One contiguous slab per worker: the coarsest-grained split, so
        # any slowdown observed is pure GIL contention, not task overhead.
        slabs = [secrets[i::threads] for i in range(threads)]
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(encode_slab, slabs))
    return time.perf_counter() - start


def encoding_speed(
    scheme: str,
    n: int = 4,
    k: int = 3,
    threads: int = 2,
    data_bytes: int = 2 << 20,
    secrets: list[bytes] | None = None,
    repeats: int = 1,
) -> EncodingResult:
    """Measure one scheme's encoding speed (best of ``repeats`` runs)."""
    if secrets is None:
        secrets = _make_secrets(data_bytes)
    total = sum(len(s) for s in secrets)
    codec = create_scheme(scheme, n, k)
    best = min(_encode_all(codec, secrets, threads) for _ in range(repeats))
    return EncodingResult(
        scheme=scheme, n=n, k=k, threads=threads, data_bytes=total, seconds=best
    )


def sweep_threads(
    threads_list: tuple[int, ...] = (1, 2, 3, 4),
    schemes: tuple[str, ...] = FIGURE5_SCHEMES,
    n: int = 4,
    k: int = 3,
    data_bytes: int = 2 << 20,
) -> list[EncodingResult]:
    """Figure 5(a): encoding speed vs number of threads at (n, k)=(4, 3)."""
    secrets = _make_secrets(data_bytes)
    return [
        encoding_speed(scheme, n=n, k=k, threads=t, secrets=secrets)
        for scheme in schemes
        for t in threads_list
    ]


def figure5b_k(n: int) -> int:
    """The paper's rule: k is the largest integer with k/n <= 3/4."""
    return (3 * n) // 4


def sweep_n(
    n_list: tuple[int, ...] = (4, 8, 12, 16, 20),
    schemes: tuple[str, ...] = FIGURE5_SCHEMES,
    threads: int = 2,
    data_bytes: int = 2 << 20,
) -> list[EncodingResult]:
    """Figure 5(b): encoding speed vs n with k = floor(3n/4), 2 threads."""
    secrets = _make_secrets(data_bytes)
    return [
        encoding_speed(
            scheme, n=n, k=figure5b_k(n), threads=threads, secrets=secrets
        )
        for scheme in schemes
        for n in n_list
    ]
