"""Chunker registry: spec strings and picklable :class:`ChunkerSpec`.

Chunking is a selectable subsystem (CLI ``--chunker``, the benchmark
matrix's ``REPRO_BENCH_CHUNKER`` leg, ``CDStoreSystem(chunker=...)``), so
chunkers are named and parameterised the same way the PR 2 codec specs
name dispersals: a registry maps a short name to a factory plus the
spec-string aliases of its constructor arguments, and a
:class:`ChunkerSpec` — a frozen dataclass of builtins, hence picklable —
travels to other processes and reconstructs an equivalent chunker there.

Spec-string grammar::

    <name>                      e.g.  rabin, gear, fixed
    <name>:<k>=<v>,<k>=<v>,...  e.g.  gear:avg=8192,min=2048,max=16384
                                      fixed:size=4096

All parameter values are integers.  Deduplication only matches across
clients that chunk identically, so two clients must use the same spec to
dedup against each other (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunking.base import Chunker
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import GearChunker
from repro.chunking.rabin import RabinChunker
from repro.errors import ParameterError

__all__ = [
    "DEFAULT_CHUNKER",
    "ChunkerSpec",
    "chunker_names",
    "create_chunker",
    "register_chunker",
]

#: Name used when no chunker is specified (the paper's default, §4.2).
DEFAULT_CHUNKER = "rabin"

#: name -> (factory, {spec alias -> constructor kwarg}).
_REGISTRY: dict[str, tuple[type, dict[str, str]]] = {}


def register_chunker(name: str, factory: type, params: dict[str, str]) -> None:
    """Register a chunker ``factory`` under ``name``.

    ``params`` maps the short spec-string aliases to the factory's keyword
    arguments (e.g. ``{"avg": "avg_size"}``).  Re-registering a name
    replaces it, so downstream code can swap in accelerated variants.
    """
    _REGISTRY[name] = (factory, dict(params))


def chunker_names() -> tuple[str, ...]:
    """Registered chunker names, sorted."""
    return tuple(sorted(_REGISTRY))


register_chunker("fixed", FixedChunker, {"size": "size"})
register_chunker(
    "rabin",
    RabinChunker,
    {"avg": "avg_size", "min": "min_size", "max": "max_size", "window": "window"},
)
register_chunker(
    "gear",
    GearChunker,
    {"avg": "avg_size", "min": "min_size", "max": "max_size", "norm": "norm"},
)


@dataclass(frozen=True)
class ChunkerSpec:
    """Picklable description of a chunker configuration.

    Mirrors the codec spec of PR 2: plain builtins in, an equivalent live
    object out (:meth:`create`), so process workers and CLI flags share
    one vocabulary.
    """

    name: str
    params: tuple[tuple[str, int], ...] = field(default=())

    @classmethod
    def parse(cls, text: str) -> "ChunkerSpec":
        """Parse a spec string (see the module docstring for the grammar).

        Raises :class:`ParameterError` with an actionable message on an
        unknown chunker name, an unknown parameter alias, or a non-integer
        value; parameter *range* errors surface when :meth:`create` runs
        the factory's own validation.
        """
        name, _, arg_text = text.strip().partition(":")
        name = name.strip()
        if name not in _REGISTRY:
            raise ParameterError(
                f"unknown chunker {name!r}; expected one of {', '.join(chunker_names())}"
            )
        aliases = _REGISTRY[name][1]
        params: list[tuple[str, int]] = []
        if arg_text:
            for item in arg_text.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in aliases:
                    raise ParameterError(
                        f"bad chunker parameter {item.strip()!r} for {name!r}; "
                        f"expected <key>=<int> with key in "
                        f"{{{', '.join(sorted(aliases))}}}"
                    )
                try:
                    params.append((key, int(value.strip())))
                except ValueError:
                    raise ParameterError(
                        f"chunker parameter {key!r} must be an integer, "
                        f"got {value.strip()!r}"
                    ) from None
        return cls(name=name, params=tuple(params))

    def create(self) -> Chunker:
        """Build the configured chunker (validating parameter ranges)."""
        if self.name not in _REGISTRY:
            raise ParameterError(
                f"unknown chunker {self.name!r}; expected one of "
                f"{', '.join(chunker_names())}"
            )
        factory, aliases = _REGISTRY[self.name]
        kwargs = {}
        for key, value in self.params:
            if key not in aliases:
                raise ParameterError(
                    f"unknown parameter {key!r} for chunker {self.name!r}; "
                    f"expected one of {', '.join(sorted(aliases))}"
                )
            kwargs[aliases[key]] = value
        chunker = factory(**kwargs)
        chunker._spec = self
        return chunker

    def __str__(self) -> str:
        if not self.params:
            return self.name
        args = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}:{args}"


def create_chunker(spec: "Chunker | ChunkerSpec | str | None") -> Chunker:
    """Resolve any accepted chunker designation to a live chunker.

    ``None`` yields the paper default; live :class:`Chunker` instances
    pass through unchanged; strings parse as spec strings.
    """
    if spec is None:
        spec = DEFAULT_CHUNKER
    if isinstance(spec, Chunker):
        return spec
    if isinstance(spec, str):
        spec = ChunkerSpec.parse(spec)
    if not isinstance(spec, ChunkerSpec):
        raise ParameterError(
            f"cannot build a chunker from {type(spec).__name__}; expected a "
            "Chunker, ChunkerSpec, spec string or None"
        )
    return spec.create()
