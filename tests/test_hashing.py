"""Hashing helpers: convergent keys, fingerprint domains."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import HASH_SIZE, fingerprint, hash_key, hmac_sha256, sha256
from repro.errors import ParameterError


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_size_constant(self):
        assert len(sha256(b"")) == HASH_SIZE == 32


class TestHashKey:
    @given(st.binary(max_size=100))
    def test_unsalted_is_plain_sha256(self, data):
        assert hash_key(data) == sha256(data)

    @given(st.binary(max_size=100), st.binary(min_size=1, max_size=16))
    def test_salt_changes_key(self, data, salt):
        assert hash_key(data, salt) != hash_key(data)

    def test_deterministic(self):
        assert hash_key(b"secret", b"org") == hash_key(b"secret", b"org")


class TestFingerprint:
    def test_domains_are_independent(self):
        data = b"share bytes"
        assert fingerprint(data, "client") != fingerprint(data, "server")

    def test_unknown_domain_raises(self):
        with pytest.raises(ParameterError):
            fingerprint(b"x", "attacker")

    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_no_trivial_collisions(self, a, b):
        if a != b:
            assert fingerprint(a) != fingerprint(b)

    def test_fingerprint_not_plain_hash(self):
        # Knowing SHA-256(data) must not reveal the fingerprint (replay
        # defence): the fingerprint is domain-prefixed.
        data = b"some chunk"
        assert fingerprint(data, "client") != sha256(data)
        assert fingerprint(data, "server") != sha256(data)


class TestHmac:
    def test_hmac_vector(self):
        import hmac as stdlib_hmac

        key, msg = b"key", b"message"
        assert hmac_sha256(key, msg) == stdlib_hmac.new(key, msg, hashlib.sha256).digest()
