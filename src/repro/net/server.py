"""Concurrent TCP server hosting one :class:`CDStoreServer` (§4 deployment).

One ``CDStoreTCPServer`` runs inside each cloud's co-locating VM and turns
the in-process server object into a network service: many clients (the
multi-client workload of Figure 8) connect concurrently, each served by a
dedicated handler thread.

Threading model — **thread per connection**, not asyncio, deliberately:

* the whole storage stack underneath (:class:`~repro.server.server.
  CDStoreServer`'s re-entrant lock, the LSM index, the container manager)
  is blocking and lock-disciplined; handler threads drive it exactly like
  the in-process callers do, so the per-server locking discipline is
  *preserved*, not re-implemented behind an event loop;
* connection counts are small (one per client per cloud, tens not tens of
  thousands), so the thread-per-connection memory cost is noise while the
  GIL releases around the hashlib/OpenSSL/file-I/O calls that dominate
  request service;
* an asyncio front would still need a thread pool for every server call
  (none of them are awaitable), adding a hop without removing a thread.

``fetch_shares`` replies are **streamed**: the handler walks
:meth:`~repro.server.server.CDStoreServer.iter_share_batches` and emits
one bounded :data:`~repro.net.wire.R_SHARE_BATCH` frame per batch, with
each share priced at payload + :data:`~repro.net.wire.SHARE_WIRE_OVERHEAD`
against ``frame_budget`` — neither a reply frame nor the server-side
working set ever exceeds the budget, no matter how many containers the
request spans (TCP backpressure on a slow client propagates straight into
the generator, which holds at most one batch).

Error discipline: a :class:`~repro.errors.ReproError` is a *protocol
answer* (typed :data:`~repro.net.wire.R_ERROR` frame, connection stays
usable); any other exception is a server bug and closes the connection
abruptly — clients see a dropped socket and run their failover path
rather than trusting a half-written reply.

Multi-tenancy: when the server is constructed with a
:class:`~repro.tenants.TenantRegistry`, every connection must complete
the challenge-response handshake (:data:`~repro.net.wire.T_AUTH` →
:data:`~repro.net.wire.R_AUTH_CHALLENGE` →
:data:`~repro.net.wire.T_AUTH_PROOF` →
:data:`~repro.net.wire.R_AUTH_OK`) before any request other than a ping
is answered.  After the handshake every ``user_id``-bearing frame is
pinned to the authenticated tenant, maintenance frames are reserved to
the ``admin`` role, share fetches are owner-scoped server-side, and a
per-tenant token bucket throttles request rates.  Without a registry
the server runs open, exactly as before.
"""

from __future__ import annotations

import hmac
import logging
import os
import socket
import threading
import time

from repro.analysis.annotations import guarded_by
from repro.errors import AuthError, ProtocolError, QuotaExceededError, ReproError
from repro.net import wire
from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES
from repro.tenants import ROLE_ADMIN, TenantRegistry, TokenBucket, auth_proof

__all__ = ["CDStoreTCPServer", "recv_exact"]

logger = logging.getLogger(__name__)

#: Maintenance/observability frames reserved to the ``admin`` role when a
#: tenant registry is active: they either touch other tenants' data
#: (scrub, GC, repair) or aggregate across tenants (stats, backup list).
ADMIN_FRAMES = frozenset(
    {
        wire.T_SCRUB,
        wire.T_COLLECT_GARBAGE,
        wire.T_REPLACE_SHARE,
        wire.T_REBUILD_RECIPE,
        wire.T_LIST_BACKUPS,
        wire.T_STATS,
        wire.T_STORED_BYTES,
    }
)


class _ConnState:
    """Per-connection auth state (owned by the one handler thread)."""

    __slots__ = ("tenant", "role", "pending")

    def __init__(self) -> None:
        self.tenant: str | None = None
        self.role: str | None = None
        #: In-flight handshake: ``(tenant_id, client_nonce, server_nonce)``.
        self.pending: tuple[str, bytes, bytes] | None = None


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionError` on EOF."""
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


class CDStoreTCPServer:
    """Serve one CDStore server over TCP to many concurrent clients.

    Parameters
    ----------
    server:
        The :class:`~repro.server.server.CDStoreServer` (or any object
        with its surface) answering the requests.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    frame_budget:
        Cap on one ``fetch_shares`` reply frame, covering share payloads
        plus their per-share wire overhead.  Also the bound on the
        server-side working set of a streamed fetch.
    max_frame:
        Hard cap on *incoming* frame payloads (request flood guard).
    tenants:
        Optional :class:`~repro.tenants.TenantRegistry`.  When given,
        connections must authenticate before issuing requests and all
        tenant-scoping/rate-limit rules apply; when ``None`` the server
        answers everyone (single-operator mode).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the live-connection
    #: set is shared between the accept loop, per-connection handler exits
    #: and shutdown, and must only be mutated under ``_conn_lock``; the
    #: per-tenant token buckets are shared by every connection a tenant
    #: holds (one budget per tenant, not per socket) and live under
    #: ``_bucket_lock``.
    GUARDED_BY = guarded_by(_connections="_conn_lock", _buckets="_bucket_lock")

    def __init__(
        self,
        server: CDStoreServer,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_budget: int = FETCH_BATCH_BYTES,
        max_frame: int = wire.MAX_FRAME_BYTES,
        tenants: TenantRegistry | None = None,
    ) -> None:
        if frame_budget < 1:
            raise ValueError(f"frame_budget must be >= 1, got {frame_budget}")
        self.server = server
        self.frame_budget = frame_budget
        self.max_frame = max_frame
        self.tenants = tenants
        self._host = host
        self._port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._bucket_lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._listener is None:
            return (self._host, self._port)
        return self._listener.getsockname()[:2]

    def start(self) -> "CDStoreTCPServer":
        """Bind, listen and spawn the accept loop (idempotent)."""
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(64)
            # Poll rather than block forever in accept(): closing a socket
            # does not reliably wake a thread blocked in accept() on Linux,
            # so a pure-blocking loop would stall shutdown until the join
            # timeout.
            listener.settimeout(0.2)
        except OSError:
            # bind() on a taken port is the common case here; the socket
            # is not yet owned by self._listener, so close it before the
            # error propagates (checker rule LIFE-001).
            listener.close()
            raise
        self._listener = listener
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"cdstore-tcp-{self.server.server_id}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Stop accepting, sever every live connection, release the port."""
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def close(self) -> None:
        """Alias for :meth:`shutdown` — the uniform lifecycle verb.

        Idempotent, like every other ``close()`` in the codebase: the
        second call finds no listener and no live connections and
        returns quietly.
        """
        self.shutdown()

    def __enter__(self) -> "CDStoreTCPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped.is_set() and listener is not None:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue  # re-check the stop flag
            except OSError:
                return  # listener closed by shutdown
            try:
                conn.settimeout(None)  # handlers block on recv until stop
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - client raced us away
                # The peer can reset between accept() and configuration;
                # close rather than leak the half-set-up socket and keep
                # accepting (checker rule LIFE-001).
                conn.close()
                continue
            with self._conn_lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"cdstore-conn-{self.server.server_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        state = _ConnState()
        try:
            while not self._stopped.is_set():
                try:
                    frame_type, payload = wire.read_frame(
                        lambda n: recv_exact(conn, n), self.max_frame
                    )
                except (ConnectionError, OSError):
                    return  # client went away between requests
                except ReproError as exc:
                    # Bad magic / oversized length: the stream cannot be
                    # resynchronised — answer typed, then hang up.
                    conn.sendall(
                        wire.encode_frame(wire.R_ERROR, wire.encode_error(exc))
                    )
                    return
                try:
                    for reply in self._dispatch(state, frame_type, payload):
                        conn.sendall(reply)
                except ReproError as exc:
                    # A typed, *answerable* failure: report it in-band and
                    # keep serving this connection.
                    conn.sendall(
                        wire.encode_frame(wire.R_ERROR, wire.encode_error(exc))
                    )
                except (ConnectionError, OSError):
                    return
        except Exception:  # noqa: BLE001 - server bug: drop the connection
            # Anything non-Repro is a bug, not a protocol answer.  Closing
            # without a reply makes the client treat it like an outage and
            # fail over, instead of trusting a corrupt half-reply — but the
            # bug itself must be attributable, not an unexplained network
            # flake: record the traceback (logging's last-resort handler
            # prints it to the serving process's stderr unconfigured).
            logger.exception(
                "connection handler crashed on server %s; closing connection",
                self.server.server_id,
            )
            return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # authentication & tenant enforcement
    # ------------------------------------------------------------------
    def _handle_auth(self, state: _ConnState, payload: bytes):
        """T_AUTH: remember the claim, answer with a fresh challenge.

        The server nonce is minted per attempt, so a recorded proof from
        an earlier connection verifies against nothing — replay defence
        lives here, not in any nonce bookkeeping.
        """
        tenant_id, client_nonce = wire.decode_auth(payload)
        server_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        state.pending = (tenant_id, client_nonce, server_nonce)
        yield wire.encode_frame(
            wire.R_AUTH_CHALLENGE, wire.encode_auth_challenge(server_nonce)
        )

    def _handle_auth_proof(self, state: _ConnState, payload: bytes):
        """T_AUTH_PROOF: verify the HMAC against the pending challenge."""
        proof = wire.decode_auth_proof(payload)
        # One challenge, one attempt: clear the pending state before
        # verifying so a failed proof cannot be retried against the same
        # server nonce (the client must restart the handshake).
        pending, state.pending = state.pending, None
        if self.tenants is None or pending is None:
            raise AuthError("authentication failed")
        tenant_id, client_nonce, server_nonce = pending
        record = self.tenants.get(tenant_id)
        # Unknown tenants still cost one HMAC so the error is not a
        # timing oracle for tenant-id existence; the message is the same
        # for every failure mode for the same reason.
        secret = record.secret if record is not None else b"\x00" * 32
        expected = auth_proof(secret, tenant_id, client_nonce, server_nonce)
        if record is None or not hmac.compare_digest(proof, expected):
            raise AuthError("authentication failed")
        state.tenant = tenant_id
        state.role = record.role
        yield wire.encode_frame(wire.R_AUTH_OK, wire.encode_auth_ok(record.role))

    def _authorize(
        self, state: _ConnState, frame_type: int, user_id: str | None = None
    ) -> None:
        """Gate one request frame against the connection's auth state.

        No-op without a registry.  Otherwise: the connection must have
        completed the handshake; the request rate is charged to the
        tenant's shared token bucket; admins may do anything, while
        tenants are barred from :data:`ADMIN_FRAMES` and from naming any
        ``user_id`` other than their own.
        """
        if self.tenants is None:
            return
        if state.tenant is None:
            raise AuthError("authentication required")
        self._check_rate(state.tenant)
        if state.role == ROLE_ADMIN:
            return
        if frame_type in ADMIN_FRAMES:
            raise AuthError("administrator role required")
        if user_id is not None and user_id != state.tenant:
            raise AuthError(
                f"user id does not match authenticated tenant {state.tenant!r}"
            )

    def _check_rate(self, tenant_id: str) -> None:
        """Charge one request to the tenant's token bucket."""
        record = self.tenants.get(tenant_id) if self.tenants is not None else None
        rate = record.quota.max_requests_per_sec if record is not None else None
        if rate is None:
            return
        with self._bucket_lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is None:
                bucket = self._buckets[tenant_id] = TokenBucket(rate)
            allowed = bucket.allow(time.monotonic())
        if not allowed:
            raise QuotaExceededError(
                f"request rate limit exceeded for tenant {tenant_id!r}"
            )

    def _fetch_owner(self, state: _ConnState) -> str | None:
        """Owner scope for share fetches: tenants see only their shares."""
        if self.tenants is None or state.role == ROLE_ADMIN:
            return None
        return state.tenant

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, state: _ConnState, frame_type: int, payload: bytes):
        """Yield encoded reply frame(s) for one request frame.

        A generator so the streaming ``fetch_shares`` reply materialises
        one bounded frame at a time; every other request yields exactly
        one frame.
        """
        server = self.server
        if frame_type == wire.T_PING:
            # Liveness stays unauthenticated: failover probes must work
            # before (and without) credentials.
            wire.decode_ping(payload)  # version checked client-side
            yield wire.encode_frame(wire.R_PONG, wire.encode_pong(server.server_id))
        elif frame_type == wire.T_AUTH:
            yield from self._handle_auth(state, payload)
        elif frame_type == wire.T_AUTH_PROOF:
            yield from self._handle_auth_proof(state, payload)
        elif frame_type == wire.T_QUERY_DUPLICATES:
            user_id, fingerprints = wire.decode_query_duplicates(payload)
            self._authorize(state, frame_type, user_id)
            known = server.query_duplicates(user_id, fingerprints)
            yield wire.encode_frame(wire.R_BOOLS, wire.encode_bools(known))
        elif frame_type == wire.T_UPLOAD_SHARES:
            user_id, uploads = wire.decode_upload_shares(payload)
            self._authorize(state, frame_type, user_id)
            server.upload_shares(user_id, uploads)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_FINALIZE_FILE:
            user_id, manifest, metas = wire.decode_finalize_file(payload)
            self._authorize(state, frame_type, user_id)
            server.finalize_file(user_id, manifest, metas)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_GET_FILE_ENTRY:
            user_id, lookup_key = wire.decode_user_key(payload)
            self._authorize(state, frame_type, user_id)
            entry = server.get_file_entry(user_id, lookup_key)
            yield wire.encode_frame(wire.R_FILE_ENTRY, wire.encode_file_entry(entry))
        elif frame_type == wire.T_GET_RECIPE:
            user_id, lookup_key, bypass = wire.decode_get_recipe(payload)
            self._authorize(state, frame_type, user_id)
            recipe = server.get_recipe(user_id, lookup_key, bypass_cache=bypass)
            yield wire.encode_frame(wire.R_RECIPE, wire.encode_recipe(recipe))
        elif frame_type == wire.T_LIST_FILES:
            user_id = wire.decode_user(payload)
            self._authorize(state, frame_type, user_id)
            listing = server.list_files(user_id)
            yield wire.encode_frame(wire.R_FILE_LIST, wire.encode_file_list(listing))
        elif frame_type == wire.T_FETCH_SHARES:
            fingerprints = wire.decode_fetch_shares(payload)
            self._authorize(state, frame_type)
            total = 0
            # Price each share at its full wire cost and leave room for the
            # frame header + count word, so a maximally-packed batch still
            # serialises to a frame of at most frame_budget bytes.
            batch_budget = max(1, self.frame_budget - wire.FRAME_HEADER.size - 4)
            for batch in server.iter_share_batches(
                fingerprints,
                budget_bytes=batch_budget,
                cost=lambda fp, data: wire.SHARE_WIRE_OVERHEAD + len(data),
                owner=self._fetch_owner(state),
            ):
                total += len(batch)
                yield wire.encode_frame(
                    wire.R_SHARE_BATCH, wire.encode_share_batch(batch)
                )
            yield wire.encode_frame(wire.R_SHARES_END, wire.encode_shares_end(total))
        elif frame_type == wire.T_DELETE_FILE:
            user_id, lookup_key = wire.decode_user_key(payload)
            self._authorize(state, frame_type, user_id)
            orphaned = server.delete_file(user_id, lookup_key)
            yield wire.encode_frame(wire.R_INT, wire.encode_int(orphaned))
        elif frame_type == wire.T_COLLECT_GARBAGE:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            freed = server.collect_garbage()
            yield wire.encode_frame(wire.R_INT, wire.encode_int(freed))
        elif frame_type == wire.T_SCRUB:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            corrupt = server.scrub()
            yield wire.encode_frame(wire.R_FP_LIST, wire.encode_fp_list(corrupt))
        elif frame_type == wire.T_FLUSH:
            _expect_empty(payload)
            # Any authenticated tenant may flush: it only makes their own
            # (and everyone's) buffered writes durable, revealing nothing.
            self._authorize(state, frame_type)
            server.flush()
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_STATS:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            yield wire.encode_frame(wire.R_STATS, wire.encode_stats(server.stats))
        elif frame_type == wire.T_STORED_BYTES:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            yield wire.encode_frame(
                wire.R_INT, wire.encode_int(server.stored_bytes)
            )
        elif frame_type == wire.T_REPLACE_SHARE:
            server_fp, data = wire.decode_replace_share(payload)
            self._authorize(state, frame_type)
            server.replace_share(server_fp, data)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_REBUILD_RECIPE:
            user_id, lookup_key, entries = wire.decode_rebuild_recipe(payload)
            self._authorize(state, frame_type, user_id)
            server.rebuild_recipe(user_id, lookup_key, entries)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_LIST_BACKUPS:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            backups = server.list_backups()
            yield wire.encode_frame(
                wire.R_BACKUP_LIST, wire.encode_backup_list(backups)
            )
        else:
            raise ProtocolError(f"unknown request frame type 0x{frame_type:02x}")


def _expect_empty(payload: bytes) -> None:
    if payload:
        raise ProtocolError(f"{len(payload)} unexpected payload bytes")
