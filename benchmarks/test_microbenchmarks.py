"""Substrate microbenchmarks (context for the paper-figure numbers).

Not a paper table — these measure the building blocks so EXPERIMENTS.md
readers can see *why* the absolute throughputs sit where they do in pure
Python: the from-scratch AES vs the OpenSSL backend, GF(2^8) bulk kernels,
Reed-Solomon encode, SHA-256 hashing, Rabin chunking, and the LSM store.
"""

import time

import numpy as np
from conftest import BENCH_CHUNKER, emit, emit_metrics

from repro.bench.reporting import format_table
from repro.crypto.ciphers import AesCtr, available_aes_backends, mask_stack
from repro.crypto.drbg import DRBG
from repro.crypto.hashing import sha256
from repro.erasure.reed_solomon import ReedSolomon
from repro.gf.gf256 import gf_mul_bytes


def _rate(nbytes: float, seconds: float) -> float:
    return nbytes / 1e6 / seconds if seconds else float("inf")


try:
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    def _legacy_mask(key: bytes, length: int) -> bytes:
        """The pre-kernel mask path: fresh CTR context + zeros per secret."""
        enc = Cipher(algorithms.AES(key), modes.CTR(b"\0" * 16)).encryptor()
        return enc.update(b"\0" * length)

except Exception:  # pragma: no cover - hosts without the cryptography wheel

    def _legacy_mask(key: bytes, length: int) -> bytes:
        return AesCtr(key, backend="pure").keystream(length)


def test_microbenchmarks(benchmark):
    data = DRBG("micro").random_bytes(1 << 20)
    rows = []

    def run():
        rows.clear()
        # AES-CTR keystream, both backends.
        for backend in available_aes_backends():
            ctr = AesCtr(b"k" * 32, backend=backend)
            start = time.perf_counter()
            ctr.keystream(len(data))
            rows.append([f"aes-ctr ({backend})", _rate(len(data), time.perf_counter() - start)])
        # AONT mask generation over *distinct* per-secret keys: the
        # convergent-encoding hot path (one EVP setup per key is
        # irreducible).  "legacy ctr" replays the pre-kernel path — a
        # fresh CTR cipher, IV packing and a fresh zero buffer per secret;
        # "ecb kernel" is the batched one-shot AES-ECB-of-counters path
        # the CAONT-RS batch encoder now uses (cached counter plaintext,
        # shared mode object, update_into).
        keys = [sha256(data[i : i + 32]) for i in range(0, 256 * 32, 32)]
        legacy = kernel = float("inf")
        for _ in range(3):  # best-of-3: EVP setup timings are noisy
            start = time.perf_counter()
            for key in keys:
                _legacy_mask(key, 8192)
            legacy = min(legacy, time.perf_counter() - start)
            start = time.perf_counter()
            mask_stack(keys, 8192)
            kernel = min(kernel, time.perf_counter() - start)
        rows.append(["aont mask (legacy ctr / secret)", _rate(len(keys) * 8192, legacy)])
        rows.append(["aont mask (batched ecb kernel)", _rate(len(keys) * 8192, kernel)])
        # SHA-256 (stdlib).
        start = time.perf_counter()
        for off in range(0, len(data), 8192):
            sha256(data[off : off + 8192])
        rows.append(["sha-256 (8 KB chunks)", _rate(len(data), time.perf_counter() - start)])
        # GF(2^8) scalar-vector multiply.
        arr = np.frombuffer(data, dtype=np.uint8)
        start = time.perf_counter()
        for _ in range(8):
            gf_mul_bytes(0x57, arr)
        rows.append(["gf256 mul_bytes", _rate(8 * len(data), time.perf_counter() - start)])
        # Reed-Solomon encode (4, 3), 8 KB pieces.
        rs = ReedSolomon(4, 3)
        start = time.perf_counter()
        for off in range(0, len(data), 8192):
            rs.encode(data[off : off + 8192])
        rows.append(["reed-solomon encode (4,3)", _rate(len(data), time.perf_counter() - start)])
        # Chunkers: the vectorised Rabin pair-table kernel, its
        # byte-at-a-time rolling reference (kept only as executable
        # documentation / property-test anchor), the two-level gear kernel
        # (FastCDC-style), and both end-to-end ingest paths.  Both
        # chunkers are always measured — the gear/rabin ratio feeds the
        # perf gate on every matrix leg.
        from repro.chunking import GearChunker, RabinChunker

        chunker = RabinChunker()
        start = time.perf_counter()
        chunker.window_fingerprints(data[: 512 << 10])
        rows.append([
            "rabin fingerprints (vectorized)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        start = time.perf_counter()
        chunker.rolling_fingerprints(data[: 64 << 10])
        rows.append([
            "rabin fingerprints (rolling ref)",
            _rate(64 << 10, time.perf_counter() - start),
        ])
        start = time.perf_counter()
        list(chunker.chunk_bytes(data[: 512 << 10]))
        rows.append([
            "rabin chunking (ingest path)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        gear = GearChunker()
        start = time.perf_counter()
        gear.window_hashes(data[: 512 << 10])
        rows.append([
            "gear hashes (dense kernel)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        start = time.perf_counter()
        list(gear.chunk_bytes(data[: 512 << 10]))
        rows.append([
            "gear chunking (ingest path)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        # LSM store put/get throughput.
        import tempfile

        from repro.lsm.db import LSMStore

        with tempfile.TemporaryDirectory() as tmp:
            with LSMStore(tmp) as db:
                start = time.perf_counter()
                for i in range(2000):
                    db.put(f"key-{i:06d}".encode(), data[i % 1024 : i % 1024 + 100])
                put_rate = 2000 / (time.perf_counter() - start)
                start = time.perf_counter()
                for i in range(2000):
                    db.get(f"key-{i:06d}".encode())
                get_rate = 2000 / (time.perf_counter() - start)
        rows.append(["lsm puts/s", put_rate])
        rows.append(["lsm gets/s", get_rate])
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["substrate", "MB/s or ops/s"],
        results,
        title="Substrate microbenchmarks (1 MB working set)",
    )
    emit("microbenchmarks", table)

    named = dict(results)
    if "aes-ctr (openssl)" in named:
        assert named["aes-ctr (openssl)"] > named["aes-ctr (pure)"]
    # The ingest path must run on the vectorised kernel, not the reference.
    assert (
        named["rabin fingerprints (vectorized)"]
        > named["rabin fingerprints (rolling ref)"]
    )
    # The FastCDC-style gear chunker is the fast ingest path: its two-level
    # kernel must beat the vectorised Rabin ingest by >= 3x (it measures
    # ~6-8x; the slack absorbs CI timer noise on a machine-relative ratio).
    assert (
        named["gear chunking (ingest path)"]
        >= 3.0 * named["rabin chunking (ingest path)"]
    )
    assert named["lsm puts/s"] > 1000
    assert named["lsm gets/s"] > 1000
    # The batched ECB-of-counters kernel must not lose to the legacy
    # per-secret CTR path (loose bound: CI timers are noisy at this scale).
    assert (
        named["aont mask (batched ecb kernel)"]
        > 0.8 * named["aont mask (legacy ctr / secret)"]
    )

    # Machine-relative ratios travel across hosts, unlike raw MB/s; these
    # feed the CI perf-regression gate.  The `ingest.<chunker>.` entry is
    # tagged with this run's matrix leg — the gate skips the other leg's
    # baseline (see check_regressions.py).
    metrics = {
        "micro.mask_kernel_over_legacy_ctr": (
            named["aont mask (batched ecb kernel)"]
            / named["aont mask (legacy ctr / secret)"]
        ),
        "micro.rabin_vectorized_over_rolling": (
            named["rabin fingerprints (vectorized)"]
            / named["rabin fingerprints (rolling ref)"]
        ),
        "micro.gear_over_rabin_ingest": (
            named["gear chunking (ingest path)"]
            / named["rabin chunking (ingest path)"]
        ),
    }
    leg_row = f"{BENCH_CHUNKER} chunking (ingest path)"
    if leg_row in named:
        metrics[f"ingest.{BENCH_CHUNKER}.chunk_over_rolling_rabin"] = (
            named[leg_row] / named["rabin fingerprints (rolling ref)"]
        )
    emit_metrics(metrics)
