"""Integrity scrubbing and surgical share repair."""

import pytest

from repro.chunking import FixedChunker
from repro.crypto.drbg import DRBG
from repro.errors import NotFoundError, ProtocolError
from repro.system.cdstore import CDStoreSystem


@pytest.fixture
def loaded_system():
    system = CDStoreSystem(n=4, k=3, salt=b"org")
    client = system.client("alice", chunker=FixedChunker(4096))
    data = DRBG("scrub-data").random_bytes(60_000)
    client.upload("/backup.tar", data)
    client.flush()
    return system, client, data


class TestScrub:
    def test_clean_system_scrubs_clean(self, loaded_system):
        system, _, _ = loaded_system
        for server in system.servers:
            assert server.scrub() == []

    def test_scrub_detects_corruption(self, loaded_system):
        system, _, _ = loaded_system
        backend = system.clouds[2].backend
        for key in backend.list_keys("container-"):
            backend.corrupt(key, offset=50, flips=4)
        corrupt = system.servers[2].scrub()
        assert corrupt
        # Other clouds unaffected.
        assert system.servers[0].scrub() == []

    def test_scrub_detects_destroyed_container(self, loaded_system):
        system, _, _ = loaded_system
        backend = system.clouds[1].backend
        keys = backend.list_keys("container-")
        backend.put_object(keys[0], b"not a container at all")
        assert system.servers[1].scrub()


class TestScrubAndRepair:
    def test_heals_corruption(self, loaded_system):
        system, client, data = loaded_system
        backend = system.clouds[2].backend
        for key in backend.list_keys("container-"):
            backend.corrupt(key, offset=50, flips=4)
        healed = system.scrub_and_repair(2)
        assert healed > 0
        # After healing, the cloud scrubs clean and can serve restores on
        # its own quorum.
        assert system.servers[2].scrub() == []
        system.fail_cloud(0)
        assert client.download("/backup.tar") == data

    def test_noop_when_clean(self, loaded_system):
        system, _, _ = loaded_system
        assert system.scrub_and_repair(0) == 0

    def test_gc_reclaims_replaced_copies(self, loaded_system):
        system, client, data = loaded_system
        backend = system.clouds[3].backend
        for key in backend.list_keys("container-"):
            backend.corrupt(key, offset=10, flips=2)
        system.scrub_and_repair(3)
        freed = system.servers[3].collect_garbage()
        assert freed > 0  # the corrupted original copies are swept
        system.fail_cloud(1)
        assert client.download("/backup.tar") == data


class TestReplaceShare:
    def test_replace_validates_fingerprint(self, loaded_system):
        system, _, _ = loaded_system
        server = system.servers[0]
        from repro.server.index import PREFIX_SHARE

        key, _ = next(iter(server.index.items(PREFIX_SHARE)))
        fp = key[len(PREFIX_SHARE):]
        with pytest.raises(ProtocolError):
            server.replace_share(fp, b"wrong bytes")

    def test_replace_unknown_share_raises(self, loaded_system):
        system, _, _ = loaded_system
        with pytest.raises(NotFoundError):
            system.servers[0].replace_share(b"f" * 32, b"data")
