"""CDStore reproduction: multi-cloud storage via convergent dispersal.

A from-scratch Python implementation of *CDStore: Toward Reliable, Secure,
and Cost-Efficient Cloud Storage via Convergent Dispersal* (Li, Qin, Lee —
USENIX ATC 2015), including the CAONT-RS convergent-dispersal codec, the
classical secret-sharing baselines, the client/server system with two-stage
deduplication, and a simulated multi-cloud testbed.

Quickstart
----------
>>> from repro import CAONTRS
>>> codec = CAONTRS(n=4, k=3)
>>> shares = codec.split(b"backup chunk contents")
>>> codec.recover(shares.subset([0, 2, 3]), shares.secret_size)
b'backup chunk contents'

The full system (chunking, deduplication, clouds) is exposed through
:class:`repro.system.CDStoreSystem`; see ``examples/quickstart.py``.
"""

from repro.core import CRSSS, AONTRS, CAONTRS, CAONTRSRivest, ConvergentDispersal
from repro.sharing import RSSS, SSMS, SSSS, IDAScheme, available_schemes, create_scheme

__version__ = "1.0.0"

__all__ = [
    "AONTRS",
    "CAONTRS",
    "CAONTRSRivest",
    "CRSSS",
    "ConvergentDispersal",
    "IDAScheme",
    "RSSS",
    "SSMS",
    "SSSS",
    "available_schemes",
    "create_scheme",
    "__version__",
]
