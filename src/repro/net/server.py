"""Concurrent TCP server hosting one :class:`CDStoreServer` (§4 deployment).

One ``CDStoreTCPServer`` runs inside each cloud's co-locating VM and turns
the in-process server object into a network service: many clients (the
multi-client workload of Figure 8) connect concurrently, each served by a
dedicated handler thread.

Threading model — **thread per connection**: handler threads drive the
blocking, lock-disciplined storage stack exactly like in-process callers
do, which keeps the per-server locking discipline intact and is the right
trade at tens of connections.  At thousands of connections the
per-connection thread stops scaling; that regime is served by
:class:`~repro.net.async_server.AsyncCDStoreTCPServer`, which multiplexes
connections on an event loop and funnels requests into a *bounded*
executor.  Both front-ends answer frames through the same
:class:`~repro.net.dispatch.FrameDispatcher`, so protocol behaviour —
auth, tenancy, rate limits, streamed fetches — is identical.

This server speaks both wire framings: connections start in v1 and may
negotiate the request-id-tagged v2 framing via PING/PONG (see
:mod:`repro.net.wire`).  Requests are still served strictly in order —
one request in flight per connection — which is a degenerate but valid
mux schedule: every reply simply echoes the id of the request it answers,
so a mux-mode client works unchanged against this server.

Error discipline: a :class:`~repro.errors.ReproError` is a *protocol
answer* (typed :data:`~repro.net.wire.R_ERROR` frame, connection stays
usable); any other exception is a server bug and closes the connection
abruptly — clients see a dropped socket and run their failover path
rather than trusting a half-written reply.
"""

from __future__ import annotations

import logging
import socket
import threading

from repro.analysis.annotations import guarded_by
from repro.errors import ReproError
from repro.net import wire
from repro.net.dispatch import ADMIN_FRAMES, ConnState, FrameDispatcher
from repro.obs.registry import REGISTRY
from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES
from repro.tenants import TenantRegistry

__all__ = ["ADMIN_FRAMES", "CDStoreTCPServer", "recv_exact"]

logger = logging.getLogger(__name__)

# Per-frame latency and error accounting live in the shared
# FrameDispatcher; the thread-per-connection front-end only tracks its
# connection count (its one piece of state the dispatcher cannot see).
_TCP_CONNECTIONS = REGISTRY.gauge(
    "net_tcp_connections", "Open connections per threaded front-end"
)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionError` on EOF."""
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


class CDStoreTCPServer:
    """Serve one CDStore server over TCP to many concurrent clients.

    Parameters
    ----------
    server:
        The :class:`~repro.server.server.CDStoreServer` (or any object
        with its surface) answering the requests.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    frame_budget:
        Cap on one ``fetch_shares`` reply frame, covering share payloads
        plus their per-share wire overhead.  Also the bound on the
        server-side working set of a streamed fetch.
    max_frame:
        Hard cap on *incoming* frame payloads (request flood guard).
    tenants:
        Optional :class:`~repro.tenants.TenantRegistry`.  When given,
        connections must authenticate before issuing requests and all
        tenant-scoping/rate-limit rules apply; when ``None`` the server
        answers everyone (single-operator mode).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the live-connection
    #: set is shared between the accept loop, per-connection handler exits
    #: and shutdown, and must only be mutated under ``_conn_lock``.  (The
    #: per-tenant token buckets moved to the shared FrameDispatcher.)
    GUARDED_BY = guarded_by(_connections="_conn_lock")

    def __init__(
        self,
        server: CDStoreServer,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_budget: int = FETCH_BATCH_BYTES,
        max_frame: int = wire.MAX_FRAME_BYTES,
        tenants: TenantRegistry | None = None,
        trace: bool = True,
        span_ring: int = 256,
        slow_threshold: float | None = 1.0,
    ) -> None:
        self._dispatcher = FrameDispatcher(
            server,
            frame_budget=frame_budget,
            tenants=tenants,
            trace=trace,
            span_ring=span_ring,
            slow_threshold=slow_threshold,
        )
        self.server = server
        self.max_frame = max_frame
        self._host = host
        self._port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()

    @property
    def frame_budget(self) -> int:
        return self._dispatcher.frame_budget

    @property
    def spans(self):
        """This front-end's span ring (the dispatcher's recorder)."""
        return self._dispatcher.spans

    @property
    def tenants(self) -> TenantRegistry | None:
        return self._dispatcher.tenants

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._listener is None:
            return (self._host, self._port)
        return self._listener.getsockname()[:2]

    def start(self) -> "CDStoreTCPServer":
        """Bind, listen and spawn the accept loop (idempotent)."""
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(64)
            # Poll rather than block forever in accept(): closing a socket
            # does not reliably wake a thread blocked in accept() on Linux,
            # so a pure-blocking loop would stall shutdown until the join
            # timeout.
            listener.settimeout(0.2)
        except OSError:
            # bind() on a taken port is the common case here; the socket
            # is not yet owned by self._listener, so close it before the
            # error propagates (checker rule LIFE-001).
            listener.close()
            raise
        self._listener = listener
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"cdstore-tcp-{self.server.server_id}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Stop accepting, sever every live connection, release the port."""
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def close(self) -> None:
        """Alias for :meth:`shutdown` — the uniform lifecycle verb.

        Idempotent, like every other ``close()`` in the codebase: the
        second call finds no listener and no live connections and
        returns quietly.
        """
        self.shutdown()

    def __enter__(self) -> "CDStoreTCPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped.is_set() and listener is not None:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue  # re-check the stop flag
            except OSError:
                return  # listener closed by shutdown
            try:
                conn.settimeout(None)  # handlers block on recv until stop
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - client raced us away
                # The peer can reset between accept() and configuration;
                # close rather than leak the half-set-up socket and keep
                # accepting (checker rule LIFE-001).
                conn.close()
                continue
            with self._conn_lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"cdstore-conn-{self.server.server_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        state = ConnState()
        _TCP_CONNECTIONS.inc(server=self.server.server_id)
        try:
            while not self._stopped.is_set():
                try:
                    frame_type, request_id, payload = wire.read_frame_v(
                        lambda n: recv_exact(conn, n), state.version, self.max_frame
                    )
                except (ConnectionError, OSError):
                    return  # client went away between requests
                except ReproError as exc:
                    # Bad magic / oversized length: the stream cannot be
                    # resynchronised — answer typed, then hang up.
                    conn.sendall(self._error_frame(state, 0, exc))
                    return
                try:
                    for reply_type, reply in self._dispatcher.dispatch(
                        state, frame_type, payload
                    ):
                        conn.sendall(
                            wire.encode_frame_v(
                                state.version, reply_type, request_id, reply
                            )
                        )
                    # The framing upgrade (if the frame was a PING that
                    # negotiated v2) applies only after the PONG is out.
                    state.apply_negotiation()
                except ReproError as exc:
                    # A typed, *answerable* failure: report it in-band and
                    # keep serving this connection.
                    conn.sendall(self._error_frame(state, request_id, exc))
                except (ConnectionError, OSError):
                    return
        except Exception:  # noqa: BLE001 - server bug: drop the connection
            # Anything non-Repro is a bug, not a protocol answer.  Closing
            # without a reply makes the client treat it like an outage and
            # fail over, instead of trusting a corrupt half-reply — but the
            # bug itself must be attributable, not an unexplained network
            # flake: record the traceback (logging's last-resort handler
            # prints it to the serving process's stderr unconfigured).
            logger.exception(
                "connection handler crashed on server %s; closing connection",
                self.server.server_id,
            )
            return
        finally:
            _TCP_CONNECTIONS.dec(server=self.server.server_id)
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _error_frame(self, state: ConnState, request_id: int, exc: ReproError) -> bytes:
        return wire.encode_frame_v(
            state.version, wire.R_ERROR, request_id, wire.encode_error(exc)
        )
