"""Encoding-speed experiments (Figure 5, §5.3).

The paper creates 2 GB of random in-memory data, chunks it with the 8 KB
variable-size chunker, encodes every secret into shares, and reports
``original bytes / total encode time``.  These drivers do the same with a
configurable data size (pure Python needs smaller defaults; the *relative*
ordering CAONT-RS > {AONT-RS, CAONT-RS-Rivest} is the reproduced claim).

Worker modes
------------

``workers="thread"`` drives the historical thread pool.  CPython cannot
reproduce the paper's near-linear thread scaling there: although hashlib
and the OpenSSL-backed cipher release the GIL, the Python-level share
bookkeeping between those calls is serialised, so the sweep is printed
faithfully (the deviation stays visible) but only the hardware-independent
codec ordering is asserted.

``workers="process"`` drives the same process pool the client's comm
engine uses (§4.6 realised with ``ProcessPoolExecutor``): secrets are
grouped into slabs, each slab is encoded in a worker process with the
batched codec kernels, and each worker reports the slab's *CPU seconds*
(``time.process_time``).  Alongside the measured wall clock, the harness
reports the **scheduled makespan** — greedy list scheduling of the slab
CPU times onto the worker count — as the throughput figure.  On a host
with at least as many free cores as workers the two coincide (the OS *is*
the greedy scheduler and the workers never contend); on the small
CI/container hosts this repo is typically benchmarked in, the measured
wall clock reflects core starvation rather than the codec, exactly the
situation the transfer experiments already handle with
:class:`~repro.cloud.network.SimClock` makespan accounting.  The table
prints both columns so nothing is hidden.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.chunking.registry import create_chunker
from repro.client.workers import WORKER_MODES, slab_spans
from repro.crypto.drbg import DRBG
from repro.errors import ParameterError
from repro.sharing.base import SecretSharingScheme
from repro.sharing.registry import create_scheme

__all__ = [
    "EncodingResult",
    "encoding_speed",
    "sweep_threads",
    "sweep_n",
    "WORKER_MODES",
]

#: The three codecs Figure 5 compares.
FIGURE5_SCHEMES = ("caont-rs", "aont-rs", "caont-rs-rivest")

#: Per-(bench)worker codec cache: one codec per (scheme, n, k) per process.
_BENCH_CODECS: dict[tuple[str, int, int], SecretSharingScheme] = {}


def _bench_codec(spec: tuple[str, int, int]) -> SecretSharingScheme:
    codec = _BENCH_CODECS.get(spec)
    if codec is None:
        codec = create_scheme(*spec)
        _BENCH_CODECS[spec] = codec
    return codec


def _encode_slab_timed(spec: tuple[str, int, int], secrets: list[bytes]) -> float:
    """Encode one slab; return its CPU seconds (top level, so picklable).

    ``process_time`` counts only CPU actually consumed by this process, so
    the figure is immune to timeslicing against sibling workers on
    oversubscribed hosts — the property the makespan accounting relies on.
    """
    codec = _bench_codec(spec)
    start = time.process_time()
    codec.encode_batch(secrets)
    return time.process_time() - start


@dataclass(frozen=True)
class EncodingResult:
    """One measured encoding configuration."""

    scheme: str
    n: int
    k: int
    threads: int
    data_bytes: int
    #: Measured wall-clock seconds of the whole sweep step.
    seconds: float
    #: Encode-pool flavour this row was measured with.
    workers: str = "thread"
    #: Greedy-makespan seconds of the slab CPU times over ``threads``
    #: workers (process mode only); None when wall clock is authoritative.
    sched_seconds: float | None = None

    @property
    def mbps(self) -> float:
        """Encoding speed in MB/s of original data (the Figure 5 metric).

        Process-mode rows report the scheduled-makespan figure (see the
        module docstring); thread/inline rows report measured wall clock.
        """
        seconds = self.sched_seconds if self.sched_seconds is not None else self.seconds
        return self.data_bytes / 1e6 / seconds if seconds else float("inf")

    @property
    def wall_mbps(self) -> float:
        """Measured wall-clock speed (always available)."""
        return self.data_bytes / 1e6 / self.seconds if self.seconds else float("inf")


def _make_secrets(
    data_bytes: int, seed: str = "fig5", chunker: str | None = None
) -> list[bytes]:
    """Variable-size chunks of random data (8 KB average, §5.3).

    ``chunker`` is a registry spec (``"rabin"`` default, ``"gear"`` for
    the FastCDC leg of the benchmark matrix).
    """
    data = DRBG(seed).random_bytes(data_bytes)
    return [chunk.data for chunk in create_chunker(chunker).chunk_bytes(data)]


def _greedy_makespan(durations: list[float], width: int) -> float:
    """List-schedule ``durations`` onto ``width`` workers; return the makespan."""
    loads = [0.0] * max(1, width)
    for duration in durations:
        loads[loads.index(min(loads))] += duration
    return max(loads)


def _encode_all_threads(
    codec: SecretSharingScheme, secrets: list[bytes], threads: int
) -> tuple[float, None]:
    """Thread/inline sweep step: batched slabs, measured wall clock."""
    spans = slab_spans([len(s) for s in secrets], threads)
    slabs = [secrets[start:end] for start, end in spans]
    start_t = time.perf_counter()
    if threads == 1:
        for slab in slabs:
            codec.encode_batch(slab)
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(codec.encode_batch, slabs))
    return time.perf_counter() - start_t, None


def _encode_all_processes(
    spec: tuple[str, int, int],
    secrets: list[bytes],
    threads: int,
    pool: ProcessPoolExecutor,
) -> tuple[float, float]:
    """Process sweep step: returns (wall seconds, scheduled makespan)."""
    spans = slab_spans([len(s) for s in secrets], threads)
    slabs = [secrets[start:end] for start, end in spans]
    start_t = time.perf_counter()
    cpu_times = list(
        pool.map(_encode_slab_timed, [spec] * len(slabs), slabs)
    )
    wall = time.perf_counter() - start_t
    return wall, _greedy_makespan(cpu_times, threads)


def encoding_speed(
    scheme: str,
    n: int = 4,
    k: int = 3,
    threads: int = 2,
    data_bytes: int = 2 << 20,
    secrets: list[bytes] | None = None,
    repeats: int = 1,
    workers: str = "thread",
    chunker: str | None = None,
) -> EncodingResult:
    """Measure one scheme's encoding speed (best of ``repeats`` runs)."""
    if workers not in WORKER_MODES:
        raise ParameterError(
            f"unknown workers mode {workers!r}; expected one of {WORKER_MODES}"
        )
    if secrets is None:
        secrets = _make_secrets(data_bytes, chunker=chunker)
    total = sum(len(s) for s in secrets)
    spec = (scheme, n, k)
    if workers == "process":
        with ProcessPoolExecutor(max_workers=threads) as pool:
            # Warm-up: fork the workers and build their cached codecs
            # outside the measured region (steady-state throughput).
            list(pool.map(_encode_slab_timed, [spec] * threads, [[b"x"]] * threads))
            runs = [
                _encode_all_processes(spec, secrets, threads, pool)
                for _ in range(repeats)
            ]
    else:
        codec = create_scheme(scheme, n, k)
        runs = [_encode_all_threads(codec, secrets, threads) for _ in range(repeats)]
    seconds, sched = min(runs, key=lambda run: run[1] if run[1] is not None else run[0])
    return EncodingResult(
        scheme=scheme,
        n=n,
        k=k,
        threads=threads,
        data_bytes=total,
        seconds=seconds,
        workers=workers,
        sched_seconds=sched,
    )


def sweep_threads(
    threads_list: tuple[int, ...] = (1, 2, 3, 4),
    schemes: tuple[str, ...] = FIGURE5_SCHEMES,
    n: int = 4,
    k: int = 3,
    data_bytes: int = 2 << 20,
    workers: str = "thread",
    repeats: int = 1,
    chunker: str | None = None,
) -> list[EncodingResult]:
    """Figure 5(a): encoding speed vs pool width at (n, k)=(4, 3)."""
    secrets = _make_secrets(data_bytes, chunker=chunker)
    return [
        encoding_speed(
            scheme, n=n, k=k, threads=t, secrets=secrets, workers=workers,
            repeats=repeats,
        )
        for scheme in schemes
        for t in threads_list
    ]


def figure5b_k(n: int) -> int:
    """The paper's rule: k is the largest integer with k/n <= 3/4."""
    return (3 * n) // 4


def sweep_n(
    n_list: tuple[int, ...] = (4, 8, 12, 16, 20),
    schemes: tuple[str, ...] = FIGURE5_SCHEMES,
    threads: int = 2,
    data_bytes: int = 2 << 20,
    workers: str = "thread",
    chunker: str | None = None,
) -> list[EncodingResult]:
    """Figure 5(b): encoding speed vs n with k = floor(3n/4), 2 threads."""
    secrets = _make_secrets(data_bytes, chunker=chunker)
    return [
        encoding_speed(
            scheme, n=n, k=figure5b_k(n), threads=threads, secrets=secrets,
            workers=workers,
        )
        for scheme in schemes
        for n in n_list
    ]
