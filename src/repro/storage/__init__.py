"""Storage substrate: backends and container management (§4.5).

Each CDStore server packs globally-unique shares into *share containers*
and file recipes into *recipe containers*, capped at 4 MB, and writes them
to the cloud's storage backend.  This package provides:

* :mod:`repro.storage.backend` — the object-store abstraction
  (:class:`MemoryBackend` for tests and simulation,
  :class:`LocalDirBackend` for on-disk runs);
* :mod:`repro.storage.container` — the container format and the
  :class:`ContainerManager` with per-user write buffers and an LRU
  container cache.
"""

from repro.storage.backend import LocalDirBackend, MemoryBackend, StorageBackend
from repro.storage.container import (
    CONTAINER_CAP,
    Container,
    ContainerManager,
    ContainerRef,
)

__all__ = [
    "CONTAINER_CAP",
    "Container",
    "ContainerManager",
    "ContainerRef",
    "LocalDirBackend",
    "MemoryBackend",
    "StorageBackend",
]
