"""End-to-end tests for the asyncio serving front-end and mux protocol.

The async server must be behaviourally identical to the threaded one for
well-behaved clients (same dispatcher, same typed errors, same bytes),
while adding the multiplexing semantics this suite pins down: out-of-order
replies routed by request id, request-id reuse rejection, overload
shedding with typed frames, slow-reader eviction, and fast failure of all
in-flight requests when the connection dies mid-mux.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.crypto.hashing import fingerprint
from repro.dedup.stats import DedupStats
from repro.errors import (
    CloudUnavailableError,
    ProtocolError,
    ServerOverloadedError,
)
from repro.net import AsyncCDStoreTCPServer, RemoteServerProxy, wire
from repro.server.messages import ShareMeta, ShareUpload
from repro.server.server import CDStoreServer


def make_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(100.0), Link(100.0)),
        )
        for i in range(n)
    ]


def make_client(servers, user="alice", **kwargs) -> CDStoreClient:
    kwargs.setdefault("chunker", FixedChunker(4096))
    return CDStoreClient(user_id=user, servers=list(servers), k=3,
                         salt=b"org", **kwargs)


def payload(size: int, seed: int = 7) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


def proxy_for(tcp, **kwargs) -> RemoteServerProxy:
    host, port = tcp.address
    return RemoteServerProxy(f"tcp://{host}:{port}", **kwargs)


@pytest.fixture
def aserved():
    """Four in-memory servers, each behind a loopback *async* server."""
    servers = make_servers(4)
    tcps = [AsyncCDStoreTCPServer(server).start() for server in servers]
    proxies = [proxy_for(t, server_id=i) for i, t in enumerate(tcps)]
    try:
        yield servers, tcps, proxies
    finally:
        for proxy in proxies:
            proxy.close()
        for tcp in tcps:
            tcp.shutdown()


class _Wrapped:
    """Delegating server wrapper for failure injection at the TCP layer."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


class GatedServer(_Wrapped):
    """``list_files()`` blocks until released — holds a request in flight."""

    def __init__(self, inner):
        super().__init__(inner)
        self.entered = threading.Event()
        self.gate = threading.Event()

    def list_files(self, user_id):
        self.entered.set()
        assert self.gate.wait(timeout=20), "gate never released"
        return self._inner.list_files(user_id)


class CrashingServer(_Wrapped):
    def __init__(self, inner, ok_calls: int):
        super().__init__(inner)
        self.ok_calls = ok_calls
        self.calls = 0

    def iter_share_batches(self, fingerprints, **kwargs):
        self.calls += 1
        if self.calls > self.ok_calls:
            raise RuntimeError("injected server crash")
        return self._inner.iter_share_batches(fingerprints, **kwargs)


class CountingServer(_Wrapped):
    def __init__(self, inner):
        super().__init__(inner)
        self.fetch_calls = 0

    def iter_share_batches(self, fingerprints, **kwargs):
        self.fetch_calls += 1
        return self._inner.iter_share_batches(fingerprints, **kwargs)


def seed_shares(server, count: int, size: int, user="alice") -> list[bytes]:
    """Upload ``count`` distinct shares in-process; return *server* fps."""
    uploads, server_fps = [], []
    for i in range(count):
        data = bytes([i % 256]) * size
        meta = ShareMeta(
            fingerprint=fingerprint(data),
            share_size=len(data),
            secret_seq=i,
            secret_size=size,
        )
        uploads.append(ShareUpload(meta=meta, data=data))
        server_fps.append(fingerprint(data, domain="server"))
    server.upload_shares(user, uploads)
    server.flush()
    return server_fps


# ---------------------------------------------------------------------------
# raw-socket helpers (for protocol-violation tests no proxy would commit)
# ---------------------------------------------------------------------------


def connect_raw(tcp, advertise: int = wire.WIRE_VERSION, timeout: float = 10.0):
    """Dial the server, run the PING handshake, return (sock, version)."""
    sock = socket.create_connection(tcp.address, timeout=timeout)
    sock.sendall(wire.encode_frame(wire.T_PING, wire.encode_ping(advertise)))
    frame_type, _rid, pong = read_raw_frame(sock, version=1)
    assert frame_type == wire.R_PONG
    version, _server_id, _flags = wire.decode_pong(pong)
    return sock, version


def read_raw_frame(sock, version: int):
    def recv_exact(n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("EOF")
            buf += chunk
        return buf

    return wire.read_frame_v(recv_exact, version)


# ---------------------------------------------------------------------------
# cross-transport identity
# ---------------------------------------------------------------------------


class TestAsyncCrossTransport:
    def test_backup_over_async_restores_byte_identically(self, aserved):
        servers, _tcps, proxies = aserved
        data = payload(200_000)
        remote = make_client(proxies)
        remote.upload("/backup/blob", data)
        remote.flush()
        assert remote.download("/backup/blob") == data
        remote.close()

        # The same stored state restores through the in-process engine.
        local = make_client(servers)
        assert local.download("/backup/blob") == data
        local.close()

    def test_serial_v1_proxy_interoperates(self, aserved):
        """A mux=False proxy speaks classic v1 framing; the async server
        serves it strictly serially but otherwise identically."""
        _servers, tcps, _proxies = aserved
        proxies = [proxy_for(t, server_id=i, mux=False)
                   for i, t in enumerate(tcps)]
        try:
            data = payload(60_000, seed=11)
            client = make_client(proxies, user="bob")
            client.upload("/f", data)
            client.flush()
            assert client.download("/f") == data
            client.close()
        finally:
            for proxy in proxies:
                proxy.close()

    def test_typed_errors_cross_the_wire(self, aserved):
        from repro.errors import NotFoundError

        _servers, _tcps, proxies = aserved
        with pytest.raises(NotFoundError):
            proxies[0].get_file_entry("alice", b"\x00" * 32)


# ---------------------------------------------------------------------------
# mux semantics
# ---------------------------------------------------------------------------


class TestMuxSemantics:
    def test_out_of_order_replies_are_routed_by_request_id(self):
        """A fast request issued *after* a slow one completes *before* it —
        one socket, two in-flight requests, replies out of order."""
        server = GatedServer(make_servers(1)[0])
        done: list[str] = []
        with AsyncCDStoreTCPServer(server, executor_size=4) as tcp:
            proxy = proxy_for(tcp)
            try:
                slow = threading.Thread(
                    target=lambda: (proxy.list_files("alice"),
                                    done.append("slow")))
                slow.start()
                assert server.entered.wait(timeout=10)
                # The slow request is parked server-side; this one overtakes.
                assert isinstance(proxy.stats, DedupStats)
                done.append("fast")
                server.gate.set()
                slow.join(timeout=10)
                assert done == ["fast", "slow"]
            finally:
                server.gate.set()
                proxy.close()

    def test_interleaved_fetch_streams_on_one_socket(self):
        """Concurrent streamed fetches multiplex on one connection and each
        reassembles exactly its own shares."""
        server = make_servers(1)[0]
        fps = seed_shares(server, count=24, size=4096)
        with AsyncCDStoreTCPServer(server, frame_budget=8192) as tcp:
            proxy = proxy_for(tcp)
            try:
                slices = [fps[0:8], fps[8:16], fps[16:24]]
                results: dict[int, dict] = {}

                def fetch(idx: int) -> None:
                    results[idx] = proxy.fetch_shares(slices[idx])

                threads = [threading.Thread(target=fetch, args=(i,))
                           for i in range(len(slices))]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                for idx, wanted in enumerate(slices):
                    assert set(results[idx]) == set(wanted)
                    for fp, data in results[idx].items():
                        assert fingerprint(data, domain="server") == fp
            finally:
                proxy.close()

    def test_abandoned_stream_then_reuse(self):
        """Breaking out of a streamed fetch leaves the connection usable:
        the tail frames of the abandoned stream are discarded, not
        misrouted into the next request."""
        server = make_servers(1)[0]
        fps = seed_shares(server, count=16, size=4096)
        with AsyncCDStoreTCPServer(server, frame_budget=4096) as tcp:
            proxy = proxy_for(tcp)
            try:
                seen = 0
                for _batch in proxy.iter_share_batches(fps):
                    seen += 1
                    break  # abandon mid-stream
                assert seen == 1
                assert isinstance(proxy.stats, DedupStats)
                full = proxy.fetch_shares(fps)
                assert set(full) == set(fps)
            finally:
                proxy.close()

    def test_request_id_reuse_is_rejected(self):
        """Reusing an in-flight request id is an unrecoverable protocol
        violation: typed R_ERROR, then the server hangs up."""
        server = GatedServer(make_servers(1)[0])
        with AsyncCDStoreTCPServer(server, executor_size=4) as tcp:
            sock, version = connect_raw(tcp)
            assert version == 2
            request = wire.encode_user("alice")
            try:
                sock.sendall(
                    wire.encode_mux_frame(wire.T_LIST_FILES, 7, request))
                assert server.entered.wait(timeout=10)
                sock.sendall(
                    wire.encode_mux_frame(wire.T_LIST_FILES, 7, request))
                while True:
                    frame_type, rid, body = read_raw_frame(sock, version=2)
                    if frame_type == wire.R_ERROR:
                        break
                assert rid == 7
                exc = wire.decode_error(body)
                assert isinstance(exc, ProtocolError)
                assert "reused" in str(exc)
                # The connection is then closed.
                server.gate.set()
                sock.settimeout(10)
                with pytest.raises(ConnectionError):
                    while True:
                        read_raw_frame(sock, version=2)
            finally:
                server.gate.set()
                sock.close()

    def test_distinct_request_ids_are_fine_back_to_back(self):
        server = make_servers(1)[0]
        with AsyncCDStoreTCPServer(server) as tcp:
            sock, version = connect_raw(tcp)
            assert version == 2
            try:
                for rid in (1, 2, 1):  # reuse *after* completion is legal
                    sock.sendall(wire.encode_mux_frame(wire.T_STATS, rid))
                    frame_type, got_rid, body = read_raw_frame(sock, version=2)
                    assert frame_type == wire.R_STATS
                    assert got_rid == rid
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# overload + backpressure
# ---------------------------------------------------------------------------


class TestOverloadAndBackpressure:
    def test_over_budget_request_is_shed_with_typed_error(self):
        """With a per-source in-flight cap of 1, a second concurrent
        request gets ServerOverloadedError while the connection (and the
        first request) stay healthy."""
        server = GatedServer(make_servers(1)[0])
        with AsyncCDStoreTCPServer(
            server, executor_size=4, source_inflight_cap=1
        ) as tcp:
            proxy = proxy_for(tcp)
            slow_result: list = []
            try:
                slow = threading.Thread(
                    target=lambda: slow_result.append(
                        proxy.list_files("alice")))
                slow.start()
                assert server.entered.wait(timeout=10)
                with pytest.raises(ServerOverloadedError):
                    proxy.stats
                server.gate.set()
                slow.join(timeout=10)
                # The in-flight request was unaffected by the shed.
                assert slow_result == [[]]
                # The admission slot is released on the event loop and can
                # lag the reply by a beat; the connection must recover
                # promptly, not necessarily on the very next frame.
                deadline = time.monotonic() + 5.0
                while True:
                    try:
                        assert isinstance(proxy.stats, DedupStats)
                        break
                    except ServerOverloadedError:
                        assert time.monotonic() < deadline, (
                            "admission slot never released after job end"
                        )
                        time.sleep(0.01)
            finally:
                server.gate.set()
                proxy.close()

    def test_slow_reader_is_evicted(self):
        """A client that stops reading a streamed fetch past the grace
        period is disconnected instead of pinning an executor slot."""
        server = make_servers(1)[0]
        fps = seed_shares(server, count=256, size=65_536)  # ~16 MB to stream
        with AsyncCDStoreTCPServer(
            server,
            frame_budget=65_536,
            write_queue_cap=65_536,
            slow_reader_grace=0.5,
        ) as tcp:
            sock, version = connect_raw(tcp)
            try:
                sock.sendall(
                    wire.encode_frame_v(
                        version, wire.T_FETCH_SHARES, 1,
                        wire.encode_fetch_shares(fps),
                    )
                )
                # Read nothing: the write queue and kernel buffers fill and
                # the grace expires (16 MB cannot hide in socket buffers).
                time.sleep(3.0)
                # The connection was aborted under us: draining whatever was
                # buffered hits a reset/EOF, never the full stream.
                sock.settimeout(30)
                frames = 0
                with pytest.raises((ConnectionError, OSError)) as excinfo:
                    while True:
                        read_raw_frame(sock, version=version)
                        frames += 1
                assert not isinstance(excinfo.value, TimeoutError)
                assert frames < 256  # the stream was cut short
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# failure semantics
# ---------------------------------------------------------------------------


class TestMuxFailureSemantics:
    def test_pending_requests_fail_fast_when_connection_dies(self):
        """Killing the server mid-mux fails every in-flight future with
        CloudUnavailableError promptly — not after the 30 s socket
        timeout."""
        server = GatedServer(make_servers(1)[0])
        tcp = AsyncCDStoreTCPServer(server, executor_size=4).start()
        proxy = proxy_for(tcp, timeout=30.0)
        failures: list[BaseException] = []

        def call() -> None:
            try:
                proxy.list_files("alice")
            except BaseException as exc:  # noqa: BLE001 - recording
                failures.append(exc)

        try:
            worker = threading.Thread(target=call)
            worker.start()
            assert server.entered.wait(timeout=10)
            start = time.monotonic()
            tcp.shutdown()
            worker.join(timeout=10)
            elapsed = time.monotonic() - start
            assert not worker.is_alive()
            assert len(failures) == 1
            assert isinstance(failures[0], CloudUnavailableError)
            assert elapsed < 10, f"fail-fast took {elapsed:.1f}s"
        finally:
            server.gate.set()
            proxy.close()
            tcp.shutdown()

    def test_connection_kill_mid_restore_fails_over_per_window(self):
        """The window-granular spare-failover path of the threaded e2e
        suite holds when the clouds are served by the async front-end."""
        servers = make_servers(4)
        victim = CrashingServer(servers[1], ok_calls=2)
        spare = CountingServer(servers[3])
        hosted = [servers[0], victim, servers[2], spare]
        tcps = [AsyncCDStoreTCPServer(server).start() for server in hosted]
        proxies = [proxy_for(t) for t in tcps]
        try:
            data = payload(60_000, seed=4)  # 15 windows of one 4 KB secret
            client = make_client(proxies, pipeline_depth=3)
            client.restore_window_bytes = 4096
            client.upload("/f", data)
            client.flush()

            assert client.download("/f") == data
            assert victim.calls > 1
            assert 0 < spare.fetch_calls < 15
            client.close()
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()

    def test_proxy_reconnects_and_reauths_after_failure(self, aserved):
        """After a fail-fast drop the next call redials (and re-runs the
        handshake) transparently."""
        _servers, tcps, proxies = aserved
        proxy = proxies[0]
        assert proxy.ping()
        # Forcibly drop the connection under the proxy.
        with proxy._lock:
            proxy._drop(reason="test-induced drop")
        assert proxy.ping()
        assert proxy.list_files("alice") == []
