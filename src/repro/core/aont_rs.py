"""AONT-RS: the original dispersed-storage codec of Resch and Plank [52].

Rivest's AONT with a *random* 32-byte key, followed by systematic
Reed-Solomon coding (§2).  This is the baseline CDStore's cost analysis
compares against: same reliability and security as CAONT-RS, but identical
secrets produce unrelated shares, so nothing deduplicates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aont import (
    rivest_aont_decode,
    rivest_aont_encode,
    rivest_aont_encode_batch,
    rivest_package_size,
)
from repro.core.package_codec import PackageRSCodec
from repro.crypto.drbg import DRBG, system_random_bytes
from repro.crypto.hashing import HASH_SIZE

__all__ = ["AONTRS"]


class AONTRS(PackageRSCodec):
    """(n, k) AONT-RS with a random key (non-deduplicable baseline).

    Parameters
    ----------
    n, k:
        Dispersal parameters; r = k - 1 computationally.
    rng:
        Optional deterministic RNG (tests/benchmarks); defaults to OS
        randomness.
    per_word:
        Model Rivest's per-word encryption cost (default True, matching the
        construction the paper benchmarks in Figure 5).
    """

    name = "aont-rs"
    deterministic = False

    def __init__(
        self,
        n: int,
        k: int,
        rng: DRBG | None = None,
        per_word: bool = True,
        rs_matrix: str = "vandermonde",
    ) -> None:
        super().__init__(n, k, rs_matrix=rs_matrix)
        self._rng = rng
        self._per_word = per_word

    def _random_key(self) -> bytes:
        if self._rng is not None:
            return self._rng.random_bytes(HASH_SIZE)
        return system_random_bytes(HASH_SIZE)

    def _make_package(self, secret: bytes) -> bytes:
        return rivest_aont_encode(secret, self._random_key(), per_word=self._per_word)

    def _draw_keys(self, secrets: Sequence[bytes]) -> list[bytes]:
        # Drawn in sequence order (before length regrouping), so a seeded
        # RNG yields byte-identical shares batched or not.
        return [self._random_key() for _ in secrets]

    def _make_packages(
        self, secrets: Sequence[bytes], keys: Sequence[bytes] | None = None
    ) -> np.ndarray:
        """Batch path: bulk masking only when the per-word cost model is off.

        With ``per_word=True`` the per-word loop *is* what the codec
        faithfully reproduces (Figure 5's cost comparison), so only the
        Reed-Solomon stage behind this hook gets batched.
        """
        assert keys is not None
        if self._per_word:
            return np.stack(
                [
                    np.frombuffer(
                        rivest_aont_encode(secret, key, per_word=True),
                        dtype=np.uint8,
                    )
                    for secret, key in zip(secrets, keys)
                ]
            )
        return rivest_aont_encode_batch(secrets, keys)

    def _package_size(self, secret_size: int) -> int:
        return rivest_package_size(secret_size)

    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        secret, _key = rivest_aont_decode(package, secret_size)
        return secret
