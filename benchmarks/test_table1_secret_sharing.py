"""Table 1 — comparison of secret sharing algorithms.

Paper columns: confidentiality degree r and storage blowup for SSSS, IDA,
RSSS, SSMS and AONT-RS at the same (n, k).  We print the analytic blowup
next to the measured blowup of real splits, plus the convergent variants.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.table1 import scheme_comparison


def test_table1(benchmark):
    rows = benchmark(scheme_comparison, n=4, k=3, rsss_r=1, secret_size=8192)

    table = format_table(
        ["scheme", "r", "analytic blowup", "measured blowup", "dedupable"],
        [
            [r.scheme, r.r, r.analytic_blowup, r.measured_blowup, r.deterministic]
            for r in rows
        ],
        title="Table 1: secret sharing algorithms at (n, k) = (4, 3), 8 KB secrets",
    )
    emit("table1", table)

    by_name = {r.scheme: r for r in rows}
    # Paper's Table 1 relationships.
    assert by_name["ssss"].measured_blowup == 4.0  # n
    assert abs(by_name["ida"].measured_blowup - 4 / 3) < 0.01  # n/k
    assert abs(by_name["rsss"].measured_blowup - 2.0) < 0.01  # n/(k-r)
    assert by_name["ssms"].measured_blowup > by_name["ida"].measured_blowup
    assert by_name["aont-rs"].measured_blowup < by_name["ssms"].measured_blowup
    # Only the convergent instantiations are deduplicable.
    assert by_name["caont-rs"].deterministic
    assert not by_name["aont-rs"].deterministic
