"""The formal server API surface, as a :class:`typing.Protocol`.

Before this existed, :class:`repro.net.client.RemoteServerProxy` merely
duck-typed :class:`repro.server.server.CDStoreServer` — nothing stopped
one surface from drifting from the other, and the wire checkers had to
enumerate frames by hand.  :class:`CDStoreServerAPI` is now the single
declared contract:

* both implementations are checked against it in the test suite
  (``isinstance`` via ``runtime_checkable``);
* the WIRE-005 analysis rule cross-checks every method declared here
  against ``METHOD_FRAMES`` in :mod:`repro.net.wire` (minus
  ``LOCAL_ONLY_METHODS``), so adding a server method without deciding
  its wire mapping — or a frame without a method — fails ``repro
  analyze``.  Adding an auth/quota frame is a one-place change each.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.dedup.stats import DedupStats
from repro.server.index import FileEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload

__all__ = ["CDStoreServerAPI"]


@runtime_checkable
class CDStoreServerAPI(Protocol):
    """Everything a CDStore cloud server exposes to clients.

    Implemented in-process by :class:`~repro.server.server.CDStoreServer`
    and over TCP by :class:`~repro.net.client.RemoteServerProxy`; the
    comm engine and the repair/scrub walks program against this surface
    only, so a cloud can be local or remote interchangeably.
    """

    server_id: int

    # -- two-stage dedup ingest -------------------------------------------
    def query_duplicates(
        self, user_id: str, fingerprints: list[bytes]
    ) -> list[bool]: ...

    def upload_shares(self, user_id: str, uploads: list[ShareUpload]) -> None: ...

    def finalize_file(
        self,
        user_id: str,
        manifest: FileManifest,
        share_metas: list[ShareMeta],
    ) -> None: ...

    # -- restore ----------------------------------------------------------
    def get_file_entry(self, user_id: str, lookup_key: bytes) -> FileEntry: ...

    def get_recipe(
        self, user_id: str, lookup_key: bytes, bypass_cache: bool = False
    ) -> list[RecipeEntry]: ...

    def list_files(self, user_id: str) -> list[tuple[bytes, FileEntry]]: ...

    def list_backups(self) -> list[tuple[str, bytes]]: ...

    def fetch_shares(
        self, fingerprints: list[bytes], owner: str | None = None
    ) -> dict[bytes, bytes]: ...

    def iter_share_batches(
        self,
        fingerprints: list[bytes],
        budget_bytes: int = ...,
        cost=None,
        owner: str | None = None,
    ) -> Iterator[list[tuple[bytes, bytes]]]: ...

    # -- maintenance ------------------------------------------------------
    def scrub(self) -> list[bytes]: ...

    def rebuild_recipe(
        self, user_id: str, lookup_key: bytes, entries: list[RecipeEntry]
    ) -> None: ...

    def replace_share(self, server_fp: bytes, data: bytes) -> None: ...

    def delete_file(self, user_id: str, lookup_key: bytes) -> int: ...

    def collect_garbage(self) -> int: ...

    def flush(self) -> None: ...

    # -- observability ----------------------------------------------------
    @property
    def stats(self) -> DedupStats: ...

    @property
    def stored_bytes(self) -> int: ...

    # -- lifecycle (never crosses the wire: LOCAL_ONLY_METHODS) -----------
    def close(self) -> None: ...
