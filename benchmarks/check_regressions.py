#!/usr/bin/env python3
"""CI perf-regression gate: compare benchmark metrics against baselines.

Reads the machine-readable results the benchmark suite writes to
``benchmarks/out/metrics.json`` (see ``conftest.emit_metrics``) and the
committed reference numbers in ``benchmarks/baselines.json``, prints a
comparison table (also appended to ``$GITHUB_STEP_SUMMARY`` when set, so
the job summary shows it), and exits non-zero when any tracked metric
regresses by more than the gate tolerance.

Every tracked metric is "higher is better" — a model throughput (MB/s) or
a machine-relative speedup ratio.  Deterministic model outputs travel
between machines bit-for-bit; the timing-derived entries are committed as
*ratios* (kernel vs legacy path, vectorised vs reference) precisely so a
slower CI runner does not read as a regression.

The bench-smoke job runs once per chunker matrix leg (``rabin``/``gear``;
``metrics.json`` records which in its ``chunker`` field).  Baseline keys
containing a chunker tag as a dotted segment (e.g.
``ingest.gear.chunk_over_rolling_rabin``) are compared only on that leg
and reported as skipped on the others; the tag vocabulary is the baseline
file's ``chunkers`` list.

Environment:

``REPRO_BENCH_GATE_TOLERANCE``
    Maximum allowed fractional regression (default: the baseline file's
    ``tolerance`` field, falling back to 0.30).

Usage::

    python benchmarks/check_regressions.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
BASELINES = BENCH_DIR / "baselines.json"
METRICS = BENCH_DIR / "out" / "metrics.json"


def load(path: Path) -> dict:
    if not path.exists():
        print(f"error: {path} not found", file=sys.stderr)
        raise SystemExit(2)
    return json.loads(path.read_text())


def main() -> int:
    baselines = load(BASELINES)
    current = load(METRICS)
    tolerance = float(
        os.environ.get(
            "REPRO_BENCH_GATE_TOLERANCE", baselines.get("tolerance", 0.30)
        )
    )

    leg = current.get("chunker", "rabin")
    tags = set(baselines.get("chunkers", []))

    def other_leg(key: str) -> bool:
        """True when ``key`` is scoped to a different chunker matrix leg."""
        segments = set(key.split("."))
        return bool(segments & tags) and leg not in segments

    lines = [
        "## Bench-smoke perf gate",
        "",
        f"Tolerance: {tolerance:.0%} regression vs committed baselines "
        f"(baseline scale {baselines.get('scale')}, "
        f"run scale {current.get('scale')}, chunker leg `{leg}`).",
        "",
        "| metric | baseline | current | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    failures = []
    measured = current.get("metrics", {})
    for key, base_value in sorted(baselines.get("metrics", {}).items()):
        got = measured.get(key)
        if got is None:
            if other_leg(key):
                lines.append(
                    f"| `{key}` | {base_value:g} | — | — | skipped (other leg) |"
                )
                continue
            status = "MISSING"
            failures.append(f"{key}: not measured (baseline {base_value:g})")
            lines.append(f"| `{key}` | {base_value:g} | — | — | {status} |")
            continue
        delta = (got - base_value) / base_value if base_value else 0.0
        if got < base_value * (1.0 - tolerance):
            status = "REGRESSED"
            failures.append(
                f"{key}: {got:g} vs baseline {base_value:g} ({delta:+.1%})"
            )
        else:
            status = "ok"
        lines.append(
            f"| `{key}` | {base_value:g} | {got:g} | {delta:+.1%} | {status} |"
        )
    untracked = sorted(set(measured) - set(baselines.get("metrics", {})))
    if untracked:
        lines += [
            "",
            "New metrics without baselines (informational): "
            + ", ".join(f"`{key}`" for key in untracked),
        ]

    report = "\n".join(lines)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(report + "\n")

    if failures:
        print(
            f"\nperf gate FAILED ({len(failures)} metric(s)):", file=sys.stderr
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
