"""Figure 10 — sharded read gateway: zipf restores through the hot cache.

Not a paper figure: CDStore (LiQL15) measures backup/restore against the
cloud quorum directly.  This experiment characterises the repo's read
gateway (`repro gateway`) on the workload such a tier exists for — many
concurrent readers restoring a zipf-skewed catalog of backups — and
follows the fig8 convention of **gating deterministic metrics** while
printing machine wall-clock as context:

* ``fig10.cache_hit_ratio`` — hot-container hit ratio of a fixed-size,
  seeded zipf replay against the gateway service.  Every input is
  deterministic (DRBG payloads, fixed chunking, SHA-based ring, LRU
  bytes), so the ratio is exact across machines and travels to CI as a
  gated baseline.
* ``fig10.gateway_over_direct`` — modeled aggregate restore speedup on
  the commercial cloud testbed (Table 2 links): a cache hit is served at
  LAN speed from the gateway's memory, a miss pays the cloud fetch it
  would have paid anyway plus the LAN forward.  The measured hit ratio
  above feeds the mix.
* the **measured loopback leg** runs 8 concurrent readers against real
  sockets both ways — direct quorum restores via per-cloud
  ``RemoteServerProxy`` frames vs the same restores through an async
  gateway front-end — and asserts the gateway's aggregate restore MB/s
  wins: a warm gateway answers one resolve plus one window round-trip
  per restore from memory, while the direct path pays per-cloud
  entry/recipe/fetch round trips and server-side index lookups.
"""

from __future__ import annotations

import bisect
import random
import threading
import time

from conftest import emit, emit_metrics, scaled

from repro.bench.reporting import format_table
from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import MB, Link
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import cloud_testbed, lan_testbed
from repro.crypto.drbg import DRBG
from repro.gateway import GatewayService
from repro.net import (
    AsyncCDStoreTCPServer,
    CDStoreTCPServer,
    RemoteServerProxy,
    wire,
)
from repro.server.server import CDStoreServer

N, K = 4, 3


# ---------------------------------------------------------------------------
# deterministic zipf workload
# ---------------------------------------------------------------------------


def zipf_ranks(
    n_items: int, count: int, theta: float = 1.1, seed: int = 0
) -> list[int]:
    """``count`` catalog ranks drawn zipf(``theta``), deterministically.

    Classic inverse-CDF sampling over the finite harmonic weights
    ``(rank+1)**-theta`` with a seeded :class:`random.Random`: the same
    ``(n_items, count, theta, seed)`` yields the same sequence on every
    machine and Python build, which is what lets the cache-hit ratio be
    a gated baseline rather than a noisy measurement.
    """
    weights = [1.0 / (rank + 1) ** theta for rank in range(n_items)]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    rng = random.Random(seed)
    return [
        min(bisect.bisect_left(cdf, rng.random()), n_items - 1)
        for _ in range(count)
    ]


def test_zipf_workload_is_deterministic():
    a = zipf_ranks(12, 240, seed=1007)
    b = zipf_ranks(12, 240, seed=1007)
    assert a == b
    assert zipf_ranks(12, 240, seed=1008) != a
    # The skew the gateway exists for: the head dominates the tail.
    assert a.count(0) > a.count(11) * 3
    assert set(a) <= set(range(12))


# ---------------------------------------------------------------------------
# shared store plumbing
# ---------------------------------------------------------------------------


def _make_servers() -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(1000.0), Link(1000.0)),
        )
        for i in range(N)
    ]


def _make_client(servers, **kwargs) -> CDStoreClient:
    return CDStoreClient(
        user_id="reader",
        servers=list(servers),
        k=K,
        salt=b"fig10",
        chunker=FixedChunker(4096),
        **kwargs,
    )


def _store_catalog(servers, files: int, file_bytes: int) -> dict[str, bytes]:
    writer = _make_client(servers)
    catalog = {}
    for rank in range(files):
        name = f"/fig10/rank-{rank}"
        data = DRBG(f"fig10-{rank}").random_bytes(file_bytes)
        writer.upload(name, data)
        catalog[name] = data
    writer.flush()
    return catalog


# ---------------------------------------------------------------------------
# gated leg 1: deterministic cache-hit ratio
# ---------------------------------------------------------------------------

#: Fixed-size replay parameters — deliberately NOT scaled(): the gate's
#: value must be identical on every machine and CI scale.
_REPLAY_FILES = 12
_REPLAY_FILE_BYTES = 96 << 10
_REPLAY_DRAWS = 240
#: Cache sized to roughly half the catalog's share bytes, so the zipf
#: head fits hot and the tail churns — the regime a real gateway runs in.
_REPLAY_CACHE_BYTES = 512 << 10
_REPLAY_WINDOW_BYTES = 32 << 10


def _replayed_hit_ratio() -> float:
    servers = _make_servers()
    catalog = _store_catalog(servers, _REPLAY_FILES, _REPLAY_FILE_BYTES)
    names = sorted(catalog)
    lookup = _make_client(servers)._lookup_key
    with GatewayService(
        servers,
        k=K,
        cache_bytes=_REPLAY_CACHE_BYTES,
        window_bytes=_REPLAY_WINDOW_BYTES,
        recipe_ttl=3600.0,
    ) as service:
        for rank in zipf_ranks(_REPLAY_FILES, _REPLAY_DRAWS, seed=1007):
            key = lookup(names[rank])
            _, _, windows = service.resolve_backup("reader", key)
            for index in range(len(windows)):
                for _server_id, _shares in service.iter_window_shards(
                    "reader", key, index
                ):
                    pass
        return service.stats()["cache_hit_ratio"]


def _modeled_gateway_over_direct(hit_ratio: float) -> float:
    """Modeled aggregate restore speedup on the commercial cloud testbed.

    Per 4 MB restore window the direct quorum fetches ``window/k`` share
    bytes from each of the ``k`` fastest clouds concurrently (makespan =
    slowest of them, one round trip each).  Through the gateway, a hit
    ships the window once over the LAN from cache memory; a miss pays
    the same cloud fetch *plus* the LAN forward.  Mixing by the measured
    hit ratio gives the steady-state speedup — deterministic, so it
    travels to CI the way fig8's mux model does.
    """
    window = 4 << 20
    clouds = sorted(
        cloud_testbed().clouds,
        key=lambda c: c.downlink.transfer_time(window // K, batches=1),
    )[:K]
    direct = max(
        cloud.downlink.transfer_time(window // K, batches=1)
        for cloud in clouds
    )
    lan = lan_testbed().clouds[0].downlink.transfer_time(window, batches=1)
    gateway = hit_ratio * lan + (1.0 - hit_ratio) * (direct + lan)
    return direct / gateway


def test_fig10_hit_ratio_and_modeled_speedup():
    hit_ratio = _replayed_hit_ratio()
    modeled = _modeled_gateway_over_direct(hit_ratio)
    table = format_table(
        ["metric", "value"],
        [
            ["zipf draws", _REPLAY_DRAWS],
            ["catalog files", _REPLAY_FILES],
            ["cache/catalog bytes", _REPLAY_CACHE_BYTES
             / (_REPLAY_FILES * _REPLAY_FILE_BYTES)],
            ["cache hit ratio", hit_ratio],
            ["modeled gateway/direct", modeled],
        ],
        title="Figure 10: deterministic zipf replay, "
              f"(n, k)=({N}, {K}), theta=1.1",
    )
    emit("fig10_replay", table)
    emit_metrics({
        "fig10.cache_hit_ratio": hit_ratio,
        "fig10.gateway_over_direct": modeled,
    })
    # A cache half the catalog's size must serve well over half the zipf
    # traffic from memory...
    assert hit_ratio > 0.5, f"hit ratio {hit_ratio:.2f}"
    # ...which on Table 2 links makes the gateway a clear aggregate win.
    assert modeled > 1.5, f"modeled gateway/direct {modeled:.2f}"


# ---------------------------------------------------------------------------
# measured leg: 8 concurrent readers over real sockets
# ---------------------------------------------------------------------------

_READERS = 8
_RESTORES_PER_READER = 6


def _run_readers(clients, sequences, names) -> float:
    """All readers restore their zipf sequences concurrently; seconds."""
    go = threading.Event()
    failures: list[BaseException] = []

    def reader(idx: int):
        def run():
            go.wait()
            try:
                for rank in sequences[idx]:
                    clients[idx].download(names[rank])
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
        return run

    threads = [
        threading.Thread(target=reader(i)) for i in range(len(clients))
    ]
    for t in threads:
        t.start()
    started = time.perf_counter()
    go.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]
    return elapsed


def test_fig10_aggregate_restore_8_readers():
    file_bytes = scaled(256 << 10, floor=128 << 10)
    files = 8
    servers = _make_servers()
    catalog = _store_catalog(servers, files, file_bytes)
    names = sorted(catalog)
    sequences = [
        zipf_ranks(files, _RESTORES_PER_READER, seed=2000 + i)
        for i in range(_READERS)
    ]
    restored = sum(
        len(catalog[names[rank]]) for seq in sequences for rank in seq
    )

    tcps = [CDStoreTCPServer(server).start() for server in servers]
    proxies = [
        RemoteServerProxy(f"tcp://{t.address[0]}:{t.address[1]}", server_id=i)
        for i, t in enumerate(tcps)
    ]
    service = GatewayService(
        [
            RemoteServerProxy(
                f"tcp://{t.address[0]}:{t.address[1]}", server_id=i
            )
            for i, t in enumerate(tcps)
        ],
        k=K,
        own_replicas=True,
    )
    front = AsyncCDStoreTCPServer(None, gateway=service).start()
    gw_proxy = RemoteServerProxy(
        f"tcp://{front.address[0]}:{front.address[1]}",
        server_id=wire.GATEWAY_SERVER_ID,
    )
    try:
        # Direct leg: every restore pays per-cloud entry/recipe/fetch
        # round trips against the k quorum clouds.
        direct_clients = [_make_client(proxies) for _ in range(_READERS)]
        direct_s = _run_readers(direct_clients, sequences, names)

        # Gateway leg (steady state): one warm pass, then the same
        # concurrent workload through the gateway frames.
        warm = _make_client(proxies, gateway=gw_proxy)
        for name in names:
            warm.download(name)
        gateway_clients = [
            _make_client(proxies, gateway=gw_proxy) for _ in range(_READERS)
        ]
        gateway_s = _run_readers(gateway_clients, sequences, names)
    finally:
        gw_proxy.close()
        front.shutdown()
        service.close()
        for proxy in proxies:
            proxy.close()
        for tcp in tcps:
            tcp.shutdown()

    direct_mbps = restored / MB / direct_s
    gateway_mbps = restored / MB / gateway_s
    stats = service.stats()
    table = format_table(
        ["read path", "aggregate MB/s", "vs direct"],
        [
            ["direct quorum", direct_mbps, 1.0],
            ["gateway (warm)", gateway_mbps, gateway_mbps / direct_mbps],
        ],
        title=f"Figure 10: {_READERS} concurrent readers x "
              f"{_RESTORES_PER_READER} zipf restores, "
              f"{file_bytes / MB:.2f} MB files, loopback TCP "
              f"(gateway hit ratio {stats['cache_hit_ratio']:.0%})",
    )
    emit("fig10_aggregate", table)

    # The acceptance bar: at 8 concurrent readers the warm gateway's
    # aggregate restore throughput beats the direct quorum (wall-clock,
    # so asserted with no margin; the gated ratio above carries the
    # regression signal).
    assert gateway_mbps > direct_mbps, (
        f"gateway {gateway_mbps:.1f} MB/s vs direct {direct_mbps:.1f} MB/s"
    )
    assert stats["cache_hit_ratio"] > 0.5
