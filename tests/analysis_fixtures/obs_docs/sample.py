"""OBS-001 fixture: one documented metric, one ghost, one suppression."""


class _Registry:
    def counter(self, name, help_text=""):
        return None

    def gauge(self, name, help_text=""):
        return None

    def histogram(self, name, help_text=""):
        return None


REGISTRY = _Registry()

_OK = REGISTRY.counter("documented_total", "catalogued in OBSERVABILITY.md")
_OK_HIST = REGISTRY.histogram("documented_seconds", "also catalogued")
_GHOST = REGISTRY.counter("ghost_total", "TRUE-POSITIVE: not in the catalogue")
_DEBUG = REGISTRY.gauge("debug_scratch_gauge")  # analysis: ignore[OBS-001] -- fixture: throwaway debug gauge, never exposed
