"""Shared AONT-package ⇄ Reed-Solomon share plumbing.

All three AONT-RS-family codecs follow the same outer shape (§2, §3.2):

1. transform the secret into an AONT package (construction-specific);
2. pad the package with zeroes so it divides evenly into ``k`` pieces;
3. encode the ``k`` pieces into ``n`` shares with a *systematic*
   Reed-Solomon code, labelling share ``i`` for cloud ``i``.

Decoding reverses the pipeline from any ``k`` shares.  This base class owns
steps 2-3 and the share bookkeeping; subclasses provide the AONT.
"""

from __future__ import annotations

import abc

from repro.erasure.reed_solomon import ReedSolomon
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["PackageRSCodec"]


class PackageRSCodec(SecretSharingScheme):
    """Base class: AONT package + systematic RS dispersal.

    Confidentiality degree is r = k - 1 in the computational sense for all
    AONT-based codecs (Table 1).
    """

    def __init__(self, n: int, k: int, rs_matrix: str = "vandermonde") -> None:
        super().__init__(n, k, r=k - 1)
        self._rs = ReedSolomon(n, k, matrix=rs_matrix)

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _make_package(self, secret: bytes) -> bytes:
        """Transform ``secret`` into an AONT package."""

    @abc.abstractmethod
    def _package_size(self, secret_size: int) -> int:
        """Exact package size for a ``secret_size``-byte secret."""

    @abc.abstractmethod
    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        """Invert the AONT and verify integrity where supported."""

    # ------------------------------------------------------------------
    # SecretSharingScheme implementation
    # ------------------------------------------------------------------
    def split(self, secret: bytes) -> ShareSet:
        package = self._make_package(secret)
        shares = tuple(self._rs.encode(package))
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        package_size = self._package_size(secret_size)
        package = self._rs.decode(shares, data_size=package_size)
        return self._open_package(package, secret_size)

    def share_size(self, secret_size: int) -> int:
        """Size in bytes of each share for a ``secret_size``-byte secret."""
        return self._rs.piece_size(self._package_size(secret_size))

    def expected_blowup(self, secret_size: int) -> float:
        """Measured blowup; asymptotically (n/k)(1 + Skey/Ssec) (Table 1)."""
        if secret_size == 0:
            return float("inf")
        return self.n * self.share_size(secret_size) / secret_size
