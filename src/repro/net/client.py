"""Remote server proxies: the client side of the networked serving layer.

A :class:`RemoteServerProxy` duck-types the :class:`~repro.server.server.
CDStoreServer` surface the comm engine, :class:`~repro.client.client.
CDStoreClient` and :class:`~repro.system.cdstore.CDStoreSystem` already
consume — same methods, same typed exceptions — so every higher layer
(per-cloud workers, streaming windows, window-granular spare failover,
repair walks) runs unchanged whether a "server" is an object or an
address.

Connection discipline:

* **one socket, lazily connected, re-established on the next call after
  any failure** — the proxy never retries a failed request itself.  A
  request that dies mid-flight surfaces as
  :class:`~repro.errors.CloudUnavailableError`, which is exactly the
  ``FETCH_ERRORS`` class the comm engine's per-window failover and the
  client's §3.2 widening already handle; retrying inside the transport
  would re-execute non-idempotent operations (``finalize_file``) behind
  the failover logic's back.
* **typed errors pass through**: an :data:`~repro.net.wire.R_ERROR` frame
  re-raises the server's exception class locally and leaves the
  connection usable (the server answered; nothing is desynchronised).

Mux mode (default): the proxy advertises wire version 2 in the PING
handshake.  Against a v2 server the connection switches to
request-id-tagged framing and the proxy becomes **fully concurrent**:
many threads share the one socket, each request gets a fresh correlation
id, a dedicated reader thread routes reply frames to per-request queues,
and streaming fetches interleave freely with other requests.  Pipelined
uploads (:meth:`RemoteServerProxy.upload_shares_async`) return an ack
handle instead of blocking a round-trip per batch — this is what lets a
comm-engine streaming window keep the socket full.  Against a v1-only
server (or with ``mux=False``) the proxy degrades to the original serial
one-request-in-flight discipline, byte-identical on the wire.

When the connection drops — transport error, reconnect, or explicit
:meth:`close` — **every in-flight request fails fast** with
:class:`~repro.errors.CloudUnavailableError`; nothing waits out a socket
timeout against a connection that no longer exists, and the next call
re-dials and re-authenticates from scratch.

The :class:`RemoteCloud` companion stands in for the
:class:`~repro.cloud.provider.CloudProvider` attribute: ``available`` /
``check_available`` probe the server with a PING, and the uplink/downlink
:class:`~repro.cloud.network.Link` models let the simulated clock charge
remote clouds exactly like local ones.
"""

from __future__ import annotations

import os
import queue
import socket
import threading

from repro.analysis.annotations import guarded_by, requires_lock
from repro.cloud.network import Link
from repro.config import CloudSpec
from repro.dedup.stats import DedupStats
from repro.errors import (
    AuthError,
    CloudUnavailableError,
    ParameterError,
    ProtocolError,
)
from repro.net import wire
from repro.net.server import recv_exact
from repro.obs.trace import current_context
from repro.server.index import FileEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload
from repro.tenants import Credentials, auth_proof

__all__ = ["RemoteCloud", "RemoteServerProxy"]

#: Reply frames that are mid-stream (more frames follow for the same
#: request id): share batches from ``fetch_shares`` and per-replica
#: shard frames from a gateway window fetch.  Everything else is the
#: terminal frame of its request.
_MIDSTREAM_FRAMES = frozenset({wire.R_SHARE_BATCH, wire.R_GW_SHARD})


class RemoteCloud:
    """Client-side view of a remote cloud: availability probe + links."""

    def __init__(self, proxy: "RemoteServerProxy", uplink: Link, downlink: Link) -> None:
        self._proxy = proxy
        self.uplink = uplink
        self.downlink = downlink

    @property
    def name(self) -> str:
        return self._proxy.address_spec

    @property
    def available(self) -> bool:
        """Whether the remote server currently answers a PING."""
        return self._proxy.ping()

    def check_available(self) -> None:
        if not self._proxy.ping():
            raise CloudUnavailableError(
                f"remote cloud {self.name} is unreachable"
            )

    @property
    def stored_bytes(self) -> int:
        return self._proxy.stored_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteCloud({self.name!r})"


class _PendingReply:
    """Reply mailbox for one in-flight mux request.

    The reader thread pushes ``(frame_type, payload)`` tuples (several,
    for a streamed fetch) or an exception instance when the connection
    dies; the issuing thread blocks on :meth:`next`.
    """

    __slots__ = ("request_id", "_queue")

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._queue: queue.SimpleQueue = queue.SimpleQueue()

    def push(self, item) -> None:
        self._queue.put(item)

    def fail(self, exc: Exception) -> None:
        self._queue.put(exc)

    def next(self, timeout: float) -> tuple[int, bytes]:
        """The next reply frame; raises the pushed exception on failure."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError from None
        if isinstance(item, Exception):
            raise item
        return item


class _CompletedAck:
    """Ack handle for the serial path: the upload already happened."""

    __slots__ = ()

    def result(self) -> None:
        return None


class _MuxAck:
    """Ack handle for one pipelined ``upload_shares_async`` request."""

    __slots__ = ("_proxy", "_handle", "_outcome")

    def __init__(self, proxy: "RemoteServerProxy", handle: _PendingReply) -> None:
        self._proxy = proxy
        self._handle = handle
        self._outcome: Exception | None | bool = False  # False = not waited yet

    def result(self) -> None:
        """Block until the server acked (or raise what it answered)."""
        if self._outcome is not False:
            if isinstance(self._outcome, Exception):
                raise self._outcome
            return None
        try:
            self._proxy._finish_single(self._handle, wire.R_OK)
        except Exception as exc:
            self._outcome = exc
            raise
        self._outcome = None
        return None


class RemoteServerProxy:
    """Drive one remote CDStore server over its binary TCP protocol.

    Parameters
    ----------
    address:
        ``tcp://host:port`` spec or a ``(host, port)`` tuple.
    server_id:
        Expected cloud index.  When given, the PONG handshake must agree
        (catching a mis-wired deployment); when None, the first handshake
        adopts the server's own id.
    uplink, downlink:
        Link models for simulated-clock charging (defaults match the
        in-process 100 MB/s provider defaults).
    timeout:
        Per-socket-operation timeout in seconds; an expiry is treated as
        an outage (the per-window failover path), never a hang.
    credentials:
        Optional :class:`~repro.tenants.Credentials`.  When given, every
        (re)connect runs the challenge-response handshake right after the
        PING — so a dropped-and-redialled connection is re-authenticated
        before the request that triggered the reconnect is sent.
    mux:
        Advertise wire version 2 and multiplex requests over the shared
        socket when the server agrees (see the module docstring).
        ``False`` pins the proxy to the serial v1 framing.
    trace:
        Offer the v2 trace extension in the PING handshake.  When the
        server accepts, every non-control request frame carries a
        fixed-size trace trailer (the calling thread's context, or
        zeroes when untraced) — see ``docs/PROTOCOL.md`` §3.1.  Ignored
        on serial (v1) connections, which never negotiate it.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): connection identity
    #: (the socket, the handshake-learned server id, the negotiated wire
    #: version) and the in-flight request tables are only touched under
    #: ``_lock`` — the comm engine drives one proxy from several threads,
    #: the reader thread routes replies concurrently, and reconnects must
    #: never interleave with either.
    GUARDED_BY = guarded_by(
        _sock="_lock",
        _server_id="_lock",
        _version="_lock",
        _trace="_lock",
        _pending="_lock",
        _discard="_lock",
        _next_id="_lock",
    )

    def __init__(
        self,
        address: str | tuple[str, int],
        server_id: int | None = None,
        uplink: Link | None = None,
        downlink: Link | None = None,
        timeout: float = 30.0,
        max_frame: int = wire.MAX_FRAME_BYTES,
        credentials: Credentials | None = None,
        mux: bool = True,
        trace: bool = True,
    ) -> None:
        if isinstance(address, str):
            self.host, self.port = CloudSpec.parse(address).address
        else:
            self.host, self.port = address
        self._server_id = server_id
        self.timeout = timeout
        self.max_frame = max_frame
        self.credentials = credentials
        self.mux = bool(mux)
        #: Version advertised in T_PING: mux proxies offer v2, pinned
        #: proxies offer v1 so the server never upgrades the framing.
        self._advertise = wire.WIRE_VERSION if self.mux else 1
        #: Whether to *offer* the trace extension (only meaningful on a
        #: mux handshake — v1 framing has no room for the trailer).
        self.trace_enabled = bool(trace) and self.mux
        #: Role granted by the last successful auth handshake (None when
        #: unauthenticated / running against an open server).
        self.role: str | None = None
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()
        #: Negotiated framing for the current connection (1 until the
        #: PONG of a mux handshake says otherwise).
        self._version = 1
        #: Whether the current connection negotiated the trace extension
        #: (the PONG echoed :data:`~repro.net.wire.FLAG_TRACE`).
        self._trace = False
        #: In-flight mux requests by correlation id.
        self._pending: dict[int, _PendingReply] = {}
        #: Abandoned stream ids whose late frames must be swallowed.
        self._discard: set[int] = set()
        self._next_id = 1
        #: Serialises mux sends so concurrent frames never interleave.
        self._send_lock = threading.Lock()
        self._reader: threading.Thread | None = None
        self.cloud = RemoteCloud(
            self,
            uplink=uplink if uplink is not None else Link(100.0),
            downlink=downlink if downlink is not None else Link(100.0),
        )
        #: Reply-frame observability: total frames seen and the largest
        #: frame (header + payload) this proxy ever received — the
        #: frame-budget tests read these.
        self.frames_received = 0
        self.max_reply_frame_bytes = 0

    # ------------------------------------------------------------------
    # connection state
    # ------------------------------------------------------------------
    @property
    def address_spec(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def server_id(self) -> int:
        """The remote server's cloud index (handshakes if never connected)."""
        if self._server_id is None:
            with self._lock:
                self._ensure_connected()
        return self._server_id

    @requires_lock("_lock")
    def _drop(self, reason: object = None) -> None:
        """Sever the connection and fail every in-flight request fast.

        The pending mailboxes get a :class:`~repro.errors.
        CloudUnavailableError` pushed *now* — a reconnect (which re-runs
        the auth handshake on a brand-new socket) can never answer a
        request sent on the old one, so letting callers wait out their
        socket timeout would only stall the failover path.
        """
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._version = 1
        self._trace = False
        self._discard.clear()
        pending, self._pending = self._pending, {}
        if pending:
            detail = f": {reason}" if reason is not None else ""
            failure = CloudUnavailableError(
                f"connection to {self.address_spec} dropped{detail}"
            )
            for handle in pending.values():
                handle.fail(failure)

    @requires_lock("_lock")
    def _ensure_connected(self) -> socket.socket:
        """Connect + handshake if needed; raises CloudUnavailableError."""
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise CloudUnavailableError(
                f"cannot connect to {self.address_spec}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:  # pragma: no cover - kernel-dependent
            # The socket is connected but not yet owned by self._sock;
            # close it here or it leaks (checker rule LIFE-001).
            sock.close()
            raise CloudUnavailableError(
                f"cannot configure socket for {self.address_spec}: {exc}"
            ) from exc
        self._sock = sock
        offered = wire.FLAG_TRACE if self.trace_enabled else 0
        try:
            frame_type, payload = self._roundtrip(
                wire.T_PING, wire.encode_ping(self._advertise, offered)
            )
        except (ConnectionError, socket.timeout, OSError) as exc:
            # A server that accepts then dies before answering the
            # handshake is an outage, not a crash: map it into the same
            # FETCH_ERRORS class every other transport failure uses.
            self._drop()
            raise CloudUnavailableError(
                f"handshake with {self.address_spec} failed: {exc}"
            ) from exc
        except BaseException:
            self._drop()
            raise
        if frame_type == wire.R_ERROR:
            # e.g. the server shed the connection at its connection cap.
            self._drop()
            raise wire.decode_error(payload)
        if frame_type != wire.R_PONG:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} answered PING with frame "
                f"0x{frame_type:02x}"
            )
        version, server_id, accepted = wire.decode_pong(payload)
        if not 1 <= version <= self._advertise:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} negotiated unsupported wire version "
                f"{version} (client offered {self._advertise})"
            )
        if self._server_id is not None and server_id != self._server_id:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} claims server id {server_id}, "
                f"expected {self._server_id}"
            )
        self._server_id = server_id
        # Both sides switch framing on the PONG boundary (wire.py): every
        # frame after this point — including the auth exchange — uses the
        # negotiated framing.  Same boundary for the trace extension: the
        # server only echoes FLAG_TRACE when it will strip trailers.
        self._version = version
        self._trace = (
            version >= 2 and bool(accepted & offered & wire.FLAG_TRACE)
        )
        if self.credentials is not None:
            self._authenticate()
        if self._version >= 2:
            # Handshake + auth ran with direct serial reads; from here the
            # reader thread owns the receive side of the socket.
            self._reader = threading.Thread(
                target=self._reader_loop,
                args=(self._sock,),
                name=f"cdstore-mux-reader-{self.host}:{self.port}",
                daemon=True,
            )
            self._reader.start()
        return self._sock

    @requires_lock("_lock")
    def _authenticate(self) -> None:
        """Run the T_AUTH / T_AUTH_PROOF handshake on a fresh connection.

        An :class:`~repro.errors.AuthError` from the server propagates
        as-is (bad credentials are not an outage — failover would just
        fail identically elsewhere); transport failures map to
        :class:`~repro.errors.CloudUnavailableError` like any other.
        """
        creds = self.credentials
        assert creds is not None
        client_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        try:
            frame_type, payload = self._roundtrip(
                wire.T_AUTH, wire.encode_auth(creds.tenant_id, client_nonce)
            )
            if frame_type == wire.R_ERROR:
                raise wire.decode_error(payload)
            if frame_type != wire.R_AUTH_CHALLENGE:
                raise ProtocolError(
                    f"{self.address_spec} answered AUTH with frame "
                    f"0x{frame_type:02x}"
                )
            server_nonce = wire.decode_auth_challenge(payload)
            proof = auth_proof(
                creds.secret, creds.tenant_id, client_nonce, server_nonce
            )
            frame_type, payload = self._roundtrip(
                wire.T_AUTH_PROOF, wire.encode_auth_proof(proof)
            )
            if frame_type == wire.R_ERROR:
                raise wire.decode_error(payload)
            if frame_type != wire.R_AUTH_OK:
                raise ProtocolError(
                    f"{self.address_spec} answered AUTH_PROOF with frame "
                    f"0x{frame_type:02x}"
                )
            self.role = wire.decode_auth_ok(payload)
        except (ConnectionError, socket.timeout, OSError) as exc:
            self._drop()
            raise CloudUnavailableError(
                f"auth handshake with {self.address_spec} failed: {exc}"
            ) from exc
        except AuthError:
            # The server answered; the connection is in sync but useless
            # without credentials it accepts — drop it so the proxy does
            # not cache a half-authenticated socket.
            self._drop()
            raise
        except BaseException:
            self._drop()
            raise

    def close(self) -> None:
        """Drop the connection (the next call reconnects) — idempotent.

        In-flight mux requests fail fast with
        :class:`~repro.errors.CloudUnavailableError`.
        """
        with self._lock:
            self._drop()

    def __enter__(self) -> "RemoteServerProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self._sock is not None else "idle"
        mode = f"v{self._version}" if self._sock is not None else "mux" if self.mux else "serial"
        return f"RemoteServerProxy({self.address_spec!r}, {state}, {mode})"

    # ------------------------------------------------------------------
    # serial request plumbing (v1 connections + the handshake phase)
    # ------------------------------------------------------------------
    @requires_lock("_lock")
    def _roundtrip(self, frame_type: int, payload: bytes) -> tuple[int, bytes]:
        """Send one request frame, read one reply frame (lock held).

        Only legal while the connection is served serially: v1 framing,
        or the v2 handshake phase before the reader thread starts.  On a
        v2 connection each exchange burns a fresh correlation id and
        checks the echo.
        """
        sock = self._sock
        assert sock is not None
        payload = self._wrap_trace(frame_type, payload)
        if self._version >= 2:
            request_id = self._alloc_id()
            sock.sendall(
                wire.encode_mux_frame(frame_type, request_id, payload, self.max_frame)
            )
            reply_type, reply_id, reply = self._read_reply_mux(sock)
            if reply_id != request_id:
                raise ProtocolError(
                    f"{self.address_spec} answered handshake frame with "
                    f"correlation id {reply_id}, expected {request_id}"
                )
            return reply_type, reply
        sock.sendall(wire.encode_frame(frame_type, payload, self.max_frame))
        return self._read_reply(sock)

    def _read_reply(self, sock: socket.socket) -> tuple[int, bytes]:
        frame_type, payload = wire.read_frame(
            lambda n: recv_exact(sock, n), self.max_frame
        )
        self.frames_received += 1
        self.max_reply_frame_bytes = max(
            self.max_reply_frame_bytes, wire.FRAME_HEADER.size + len(payload)
        )
        return frame_type, payload

    def _read_reply_mux(self, sock: socket.socket) -> tuple[int, int, bytes]:
        frame_type, request_id, payload = wire.read_frame_mux(
            lambda n: recv_exact(sock, n), self.max_frame
        )
        self.frames_received += 1
        self.max_reply_frame_bytes = max(
            self.max_reply_frame_bytes, wire.MUX_FRAME_HEADER.size + len(payload)
        )
        return frame_type, request_id, payload

    # ------------------------------------------------------------------
    # mux request plumbing
    # ------------------------------------------------------------------
    @requires_lock("_lock")
    def _wrap_trace(self, frame_type: int, payload: bytes) -> bytes:
        """Append the trace trailer when negotiated (control frames exempt).

        The trailer is fixed-size and carried on *every* non-control
        request frame once the extension is on — an untraced thread
        sends the all-zero context rather than switching formats
        per-request (``wire.split_trace_context`` on the server side
        then needs no out-of-band length signal).
        """
        if not self._trace or frame_type in wire.CONTROL_FRAMES:
            return payload
        trace_id, span_id = current_context()
        return payload + wire.encode_trace_context(trace_id, span_id)

    @requires_lock("_lock")
    def _alloc_id(self) -> int:
        """A correlation id not currently in flight (or being discarded)."""
        rid = self._next_id
        while rid in self._pending or rid in self._discard:
            rid = rid % wire.REQUEST_ID_MAX + 1
        self._next_id = rid % wire.REQUEST_ID_MAX + 1
        return rid

    def _submit(self, frame_type: int, payload: bytes) -> _PendingReply | None:
        """Register + send one mux request; ``None`` means use the serial path.

        The connection lock covers connect/registration only — the send
        happens under the dedicated send lock so a slow ``sendall`` never
        blocks the reader thread's reply routing, and waiting for the
        reply holds no lock at all.
        """
        with self._lock:
            self._ensure_connected()
            if self._version < 2:
                return None
            payload = self._wrap_trace(frame_type, payload)
            handle = _PendingReply(self._alloc_id())
            self._pending[handle.request_id] = handle
            sock = self._sock
        frame = wire.encode_mux_frame(
            frame_type, handle.request_id, payload, self.max_frame
        )
        try:
            with self._send_lock:
                sock.sendall(frame)
        except (ConnectionError, socket.timeout, OSError) as exc:
            with self._lock:
                if self._sock is sock:
                    self._drop(reason=exc)
            raise CloudUnavailableError(
                f"connection to {self.address_spec} dropped: {exc}"
            ) from exc
        return handle

    def _await_reply(self, handle: _PendingReply) -> tuple[int, bytes]:
        """Block for the next frame routed to ``handle``.

        A timeout is indistinguishable from a wedged server: the reply
        could still arrive and desynchronise nothing (ids disambiguate),
        but the *caller's* window deadline has passed — drop the whole
        connection so every sibling request fails over together.
        """
        try:
            return handle.next(self.timeout)
        except TimeoutError:
            with self._lock:
                self._pending.pop(handle.request_id, None)
                self._drop(reason="request timed out")
            raise CloudUnavailableError(
                f"request to {self.address_spec} timed out "
                f"after {self.timeout}s"
            ) from None

    def _forget(self, handle: _PendingReply) -> None:
        with self._lock:
            self._pending.pop(handle.request_id, None)

    def _finish_single(self, handle: _PendingReply, expect: int) -> bytes:
        """Await a single-frame reply and enforce its type."""
        try:
            reply_type, reply = self._await_reply(handle)
        finally:
            self._forget(handle)
        if reply_type == wire.R_ERROR:
            raise wire.decode_error(reply)
        if reply_type != expect:
            with self._lock:
                self._drop(reason=f"unexpected frame 0x{reply_type:02x}")
            raise ProtocolError(
                f"{self.address_spec} answered with unexpected frame "
                f"0x{reply_type:02x} (wanted 0x{expect:02x})"
            )
        return reply

    def _reader_loop(self, sock: socket.socket) -> None:
        """Route reply frames to their request mailbox (one per connection).

        Exits when the socket dies or the connection is dropped; any
        protocol violation (unsolicited correlation id, desynchronised
        framing) kills the connection, which fails all in-flight requests
        fast.
        """
        try:
            while True:
                frame = self._read_routed_frame(sock)
                if frame is None:
                    return
                reply_type, request_id, payload = frame
                handle: _PendingReply | None
                with self._lock:
                    if self._sock is not sock:
                        return  # connection was replaced under us
                    handle = self._pending.get(request_id)
                    if handle is None:
                        if request_id in self._discard:
                            # Tail of an abandoned stream: swallow until
                            # its terminal frame, then forget the id.
                            if reply_type not in _MIDSTREAM_FRAMES:
                                self._discard.discard(request_id)
                            continue
                        raise ProtocolError(
                            f"{self.address_spec} sent unsolicited frame "
                            f"0x{reply_type:02x} for request id {request_id}"
                        )
                    if reply_type not in _MIDSTREAM_FRAMES:
                        # Every reply except a mid-stream share batch is
                        # terminal: retire the id here so a handle nobody
                        # awaits (an abandoned pipelined ack) cannot leak
                        # its pending-table entry.
                        del self._pending[request_id]
                handle.push((reply_type, payload))
        except BaseException as exc:  # noqa: BLE001 - any exit fails pendings
            with self._lock:
                if self._sock is sock:
                    self._drop(reason=exc)

    def _read_routed_frame(self, sock: socket.socket):
        """One v2 frame, tolerating idle-timeout ticks with nothing pending.

        Returns ``None`` when the connection was dropped while idle; lets
        the timeout propagate when requests are waiting (that is a real
        outage) or when a frame was cut off mid-read (desync).
        """
        started = False

        def recv(n: int) -> bytes:
            nonlocal started
            parts: list[bytes] = []
            remaining = n
            while remaining:
                try:
                    chunk = sock.recv(min(remaining, 1 << 20))
                except socket.timeout:
                    if started or parts:
                        raise  # mid-frame: the stream is desynchronised
                    with self._lock:
                        if self._sock is not sock:
                            raise  # dropped while idle: exit the reader
                        if self._pending:
                            raise  # someone is waiting: a real outage
                    continue  # idle keepalive tick; keep listening
                if not chunk:
                    raise ConnectionError("peer closed the connection mid-frame")
                parts.append(chunk)
                remaining -= len(chunk)
            started = True
            return b"".join(parts)

        frame_type, request_id, payload = wire.read_frame_mux(recv, self.max_frame)
        self.frames_received += 1
        self.max_reply_frame_bytes = max(
            self.max_reply_frame_bytes, wire.MUX_FRAME_HEADER.size + len(payload)
        )
        return frame_type, request_id, payload

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    def _call(self, frame_type: int, payload: bytes, expect: int) -> bytes:
        """One request/reply exchange with typed-error and outage mapping."""
        handle = self._submit(frame_type, payload)
        if handle is not None:
            return self._finish_single(handle, expect)
        with self._lock:
            self._ensure_connected()
            try:
                reply_type, reply = self._roundtrip(frame_type, payload)
            except (ConnectionError, socket.timeout, OSError) as exc:
                # The connection died mid-request: reconnect on the *next*
                # call; this one reports an outage so failover runs.
                self._drop(reason=exc)
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped: {exc}"
                ) from exc
            if reply_type == wire.R_ERROR:
                raise wire.decode_error(reply)
            if reply_type != expect:
                self._drop()
                raise ProtocolError(
                    f"{self.address_spec} answered 0x{frame_type:02x} with "
                    f"unexpected frame 0x{reply_type:02x}"
                )
            return reply

    def ping(self) -> bool:
        """Cheap liveness probe (connects if needed).

        Transport and protocol failures never raise — they read as "not
        available", the same answer a dead server gives.  Rejected
        credentials DO raise :class:`~repro.errors.AuthError`: the server
        is up and answering, and reporting it as unreachable would send
        the operator debugging the network instead of their secret.
        """
        try:
            with self._lock:
                self._ensure_connected()
                mux_live = self._version >= 2
                if not mux_live:
                    reply_type, payload = self._roundtrip(
                        wire.T_PING, wire.encode_ping(self._advertise)
                    )
                    if reply_type != wire.R_PONG:
                        self._drop()
                        return False
                    wire.decode_pong(payload)
                    return True
            # Mux connection: the probe flows through the reader thread
            # like any other request (the connection lock is not held
            # while waiting, so concurrent requests keep moving).
            reply = self._call(
                wire.T_PING, wire.encode_ping(self._advertise), wire.R_PONG
            )
            wire.decode_pong(reply)
            return True
        except AuthError:
            with self._lock:
                self._drop()
            raise
        except Exception:
            with self._lock:
                self._drop()
            return False

    # ------------------------------------------------------------------
    # the CDStoreServer surface
    # ------------------------------------------------------------------
    def query_duplicates(self, user_id: str, fingerprints: list[bytes]) -> list[bool]:
        reply = self._call(
            wire.T_QUERY_DUPLICATES,
            wire.encode_query_duplicates(user_id, fingerprints),
            wire.R_BOOLS,
        )
        known = wire.decode_bools(reply)
        if len(known) != len(fingerprints):
            raise ProtocolError(
                f"{self.address_spec} answered {len(known)} bools for "
                f"{len(fingerprints)} fingerprints"
            )
        return known

    def upload_shares(self, user_id: str, uploads: list[ShareUpload]) -> None:
        self._call(
            wire.T_UPLOAD_SHARES,
            wire.encode_upload_shares(user_id, uploads),
            wire.R_OK,
        )

    def upload_shares_async(self, user_id: str, uploads: list[ShareUpload]):
        """Pipelined upload: send now, return an ack handle to wait on.

        On a mux connection the batch goes on the wire immediately and
        ``handle.result()`` blocks until the server's :data:`~repro.net.
        wire.R_OK` (re-raising any typed error, mapping transport death
        to :class:`~repro.errors.CloudUnavailableError`).  Keeping a
        small window of unacked batches in flight removes the
        round-trip-per-batch stall from streaming upload windows.  On a
        serial connection this degrades to a synchronous upload that has
        already completed by the time the handle is returned.
        """
        payload = wire.encode_upload_shares(user_id, uploads)
        handle = self._submit(wire.T_UPLOAD_SHARES, payload)
        if handle is None:
            self._call_serial_ok(wire.T_UPLOAD_SHARES, payload)
            return _CompletedAck()
        return _MuxAck(self, handle)

    def _call_serial_ok(self, frame_type: int, payload: bytes) -> None:
        # _submit already proved the connection is serial; _call will take
        # the serial branch (mux connections never downgrade mid-life).
        self._call(frame_type, payload, wire.R_OK)

    def finalize_file(
        self,
        user_id: str,
        manifest: FileManifest,
        share_metas: list[ShareMeta],
    ) -> None:
        self._call(
            wire.T_FINALIZE_FILE,
            wire.encode_finalize_file(user_id, manifest, share_metas),
            wire.R_OK,
        )

    def get_file_entry(self, user_id: str, lookup_key: bytes) -> FileEntry:
        reply = self._call(
            wire.T_GET_FILE_ENTRY,
            wire.encode_user_key(user_id, lookup_key),
            wire.R_FILE_ENTRY,
        )
        return wire.decode_file_entry(reply)

    def get_recipe(
        self, user_id: str, lookup_key: bytes, bypass_cache: bool = False
    ) -> list[RecipeEntry]:
        reply = self._call(
            wire.T_GET_RECIPE,
            wire.encode_get_recipe(user_id, lookup_key, bypass_cache),
            wire.R_RECIPE,
        )
        return wire.decode_recipe(reply)

    def list_files(self, user_id: str) -> list[tuple[bytes, FileEntry]]:
        reply = self._call(
            wire.T_LIST_FILES, wire.encode_user(user_id), wire.R_FILE_LIST
        )
        return wire.decode_file_list(reply)

    def fetch_shares(
        self, fingerprints: list[bytes], owner: str | None = None
    ) -> dict[bytes, bytes]:
        """Reassemble the server's bounded reply-frame stream into a map.

        ``owner`` scoping is enforced *server-side* from the
        authenticated tenant — it never crosses the wire, so passing an
        explicit owner here would silently promise a scope this proxy
        cannot deliver; it is rejected instead.
        """
        self._reject_local_owner(owner)
        out: dict[bytes, bytes] = {}
        for batch in self.iter_share_batches(fingerprints):
            out.update(batch)
        return out

    @staticmethod
    def _reject_local_owner(owner: str | None) -> None:
        if owner is not None:
            raise ParameterError(
                "owner scoping on remote fetches is derived from the "
                "authenticated tenant server-side; do not pass owner= to a "
                "RemoteServerProxy"
            )

    def iter_share_batches(
        self,
        fingerprints: list[bytes],
        budget_bytes: int | None = None,
        cost=None,
        owner: str | None = None,
    ):
        """Stream the server's bounded share batches, one list per frame.

        Protocol parity with
        :meth:`~repro.server.server.CDStoreServer.iter_share_batches`,
        with the batching decided *server-side*: the serving process
        prices shares against its own frame budget, so ``budget_bytes``
        and ``cost`` are rejected here rather than silently ignored.

        Mux connections interleave this stream with other requests (its
        frames are routed by correlation id); abandoning the generator
        early just parks the id on a discard list so the tail of the
        stream is swallowed — the connection stays usable.  Serial
        connections hold the lock across yields, and abandonment drops
        the connection (unread batches would desynchronise it).
        """
        if budget_bytes is not None or cost is not None:
            raise ParameterError(
                "remote share-batch sizing is fixed by the server's frame "
                "budget; budget_bytes/cost cannot be set through a proxy"
            )
        self._reject_local_owner(owner)
        request = wire.encode_fetch_shares(fingerprints)
        handle = self._submit(wire.T_FETCH_SHARES, request)
        if handle is None:
            yield from self._iter_share_batches_serial(request)
            return
        streamed = 0
        terminal = False
        try:
            while True:
                reply_type, payload = self._await_reply(handle)
                if reply_type == wire.R_SHARE_BATCH:
                    try:
                        batch = wire.decode_share_batch(payload)
                    except ProtocolError:
                        # Malformed frame: the server-side stream state is
                        # unknowable — kill the connection, not just the
                        # request.
                        terminal = True
                        with self._lock:
                            self._drop(reason="malformed share batch")
                        raise
                    streamed += len(batch)
                    yield batch
                    continue
                if reply_type == wire.R_SHARES_END:
                    terminal = True
                    total = wire.decode_shares_end(payload)
                    if total != streamed:
                        raise ProtocolError(
                            f"{self.address_spec} streamed {streamed} "
                            f"shares but announced {total}"
                        )
                    return
                if reply_type == wire.R_ERROR:
                    terminal = True  # in sync: the server answered
                    raise wire.decode_error(payload)
                terminal = True
                with self._lock:
                    self._drop(reason=f"unexpected frame 0x{reply_type:02x}")
                raise ProtocolError(
                    f"{self.address_spec} sent unexpected frame "
                    f"0x{reply_type:02x} inside a share stream"
                )
        except CloudUnavailableError:
            terminal = True  # the connection is already gone
            raise
        finally:
            with self._lock:
                still_registered = (
                    self._pending.pop(handle.request_id, None) is not None
                )
                if still_registered and not terminal and self._sock is not None:
                    # Abandoned mid-stream: remaining frames for this id
                    # must be swallowed, not treated as unsolicited.
                    self._discard.add(handle.request_id)

    def _iter_share_batches_serial(self, request: bytes):
        """The v1 path: stream under the connection lock, drop on abandon."""
        with self._lock:
            self._ensure_connected()
            sock = self._sock
            finished = False
            try:
                sock.sendall(
                    wire.encode_frame(wire.T_FETCH_SHARES, request, self.max_frame)
                )
                streamed = 0
                while True:
                    reply_type, payload = self._read_reply(sock)
                    if reply_type == wire.R_SHARE_BATCH:
                        batch = wire.decode_share_batch(payload)
                        streamed += len(batch)
                        yield batch
                        continue
                    if reply_type == wire.R_SHARES_END:
                        total = wire.decode_shares_end(payload)
                        if total != streamed:
                            raise ProtocolError(
                                f"{self.address_spec} streamed {streamed} "
                                f"shares but announced {total}"
                            )
                        finished = True
                        return
                    if reply_type == wire.R_ERROR:
                        finished = True  # in sync: the server answered
                        raise wire.decode_error(payload)
                    raise ProtocolError(
                        f"{self.address_spec} sent unexpected frame "
                        f"0x{reply_type:02x} inside a share stream"
                    )
            except (ConnectionError, socket.timeout, OSError) as exc:
                finished = True
                self._drop(reason=exc)
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped mid-fetch: {exc}"
                ) from exc
            finally:
                # Early abandonment (GeneratorExit) or a mid-stream decode
                # error leaves reply frames buffered on the socket; drop it
                # so the next request cannot read them as its own reply.
                if not finished:
                    self._drop()

    def delete_file(self, user_id: str, lookup_key: bytes) -> int:
        reply = self._call(
            wire.T_DELETE_FILE,
            wire.encode_user_key(user_id, lookup_key),
            wire.R_INT,
        )
        return wire.decode_int(reply)

    def collect_garbage(self) -> int:
        return wire.decode_int(self._call(wire.T_COLLECT_GARBAGE, b"", wire.R_INT))

    def scrub(self) -> list[bytes]:
        return wire.decode_fp_list(self._call(wire.T_SCRUB, b"", wire.R_FP_LIST))

    def flush(self) -> None:
        self._call(wire.T_FLUSH, b"", wire.R_OK)

    def replace_share(self, server_fp: bytes, data: bytes) -> None:
        self._call(
            wire.T_REPLACE_SHARE,
            wire.encode_replace_share(server_fp, data),
            wire.R_OK,
        )

    def rebuild_recipe(
        self, user_id: str, lookup_key: bytes, entries: list[RecipeEntry]
    ) -> None:
        self._call(
            wire.T_REBUILD_RECIPE,
            wire.encode_rebuild_recipe(user_id, lookup_key, entries),
            wire.R_OK,
        )

    def list_backups(self) -> list[tuple[str, bytes]]:
        return wire.decode_backup_list(
            self._call(wire.T_LIST_BACKUPS, b"", wire.R_BACKUP_LIST)
        )

    # ------------------------------------------------------------------
    # gateway surface (only answered by a `repro gateway` front-end)
    # ------------------------------------------------------------------
    def resolve_backup(
        self, user_id: str, lookup_key: bytes
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        """One-round-trip restore resolution against a read gateway.

        Returns ``(file_size, secret_sizes, windows)`` — the gateway's
        cross-checked :class:`~repro.client.read.RestorePlan` material.
        A plain cloud front-end answers with ``ProtocolError``.
        """
        reply = self._call(
            wire.T_GW_RESOLVE,
            wire.encode_gw_resolve(user_id, lookup_key),
            wire.R_GW_BACKUP,
        )
        return wire.decode_gw_backup(reply)

    def iter_window_shards(
        self, user_id: str, lookup_key: bytes, window_index: int
    ):
        """Stream one resolved window's per-replica shards from a gateway.

        Yields ``(server_id, shares)`` with the shares in sequence order;
        the gateway terminates the stream with a shard count that must
        match what was streamed.  Same interleaving/abandonment rules as
        :meth:`iter_share_batches`: mux connections park an abandoned
        stream's id on the discard list, serial connections drop.
        """
        request = wire.encode_gw_window(user_id, lookup_key, window_index)
        handle = self._submit(wire.T_GW_WINDOW, request)
        if handle is None:
            yield from self._iter_window_shards_serial(request)
            return
        streamed = 0
        terminal = False
        try:
            while True:
                reply_type, payload = self._await_reply(handle)
                if reply_type == wire.R_GW_SHARD:
                    try:
                        shard = wire.decode_gw_shard(payload)
                    except ProtocolError:
                        terminal = True
                        with self._lock:
                            self._drop(reason="malformed gateway shard")
                        raise
                    streamed += 1
                    yield shard
                    continue
                if reply_type == wire.R_GW_WINDOW_END:
                    terminal = True
                    total = wire.decode_gw_window_end(payload)
                    if total != streamed:
                        raise ProtocolError(
                            f"{self.address_spec} streamed {streamed} "
                            f"shards but announced {total}"
                        )
                    return
                if reply_type == wire.R_ERROR:
                    terminal = True  # in sync: the gateway answered
                    raise wire.decode_error(payload)
                terminal = True
                with self._lock:
                    self._drop(reason=f"unexpected frame 0x{reply_type:02x}")
                raise ProtocolError(
                    f"{self.address_spec} sent unexpected frame "
                    f"0x{reply_type:02x} inside a shard stream"
                )
        except CloudUnavailableError:
            terminal = True  # the connection is already gone
            raise
        finally:
            with self._lock:
                still_registered = (
                    self._pending.pop(handle.request_id, None) is not None
                )
                if still_registered and not terminal and self._sock is not None:
                    self._discard.add(handle.request_id)

    def _iter_window_shards_serial(self, request: bytes):
        """The v1 path: stream under the connection lock, drop on abandon."""
        with self._lock:
            self._ensure_connected()
            sock = self._sock
            finished = False
            try:
                sock.sendall(
                    wire.encode_frame(wire.T_GW_WINDOW, request, self.max_frame)
                )
                streamed = 0
                while True:
                    reply_type, payload = self._read_reply(sock)
                    if reply_type == wire.R_GW_SHARD:
                        streamed += 1
                        yield wire.decode_gw_shard(payload)
                        continue
                    if reply_type == wire.R_GW_WINDOW_END:
                        total = wire.decode_gw_window_end(payload)
                        if total != streamed:
                            raise ProtocolError(
                                f"{self.address_spec} streamed {streamed} "
                                f"shards but announced {total}"
                            )
                        finished = True
                        return
                    if reply_type == wire.R_ERROR:
                        finished = True  # in sync: the gateway answered
                        raise wire.decode_error(payload)
                    raise ProtocolError(
                        f"{self.address_spec} sent unexpected frame "
                        f"0x{reply_type:02x} inside a shard stream"
                    )
            except (ConnectionError, socket.timeout, OSError) as exc:
                finished = True
                self._drop(reason=exc)
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped mid-fetch: {exc}"
                ) from exc
            finally:
                if not finished:
                    self._drop()

    @property
    def stats(self) -> DedupStats:
        """The remote server's dedup counters (one RPC per access)."""
        return wire.decode_stats(self._call(wire.T_STATS, b"", wire.R_STATS))

    def obs_stats(self) -> dict:
        """The remote front-end's observability snapshot (admin-gated).

        One :data:`~repro.net.wire.T_OBS_STATS` round trip; the reply is
        the versioned JSON snapshot — metrics registry contents plus the
        front-end's span ring (see ``docs/OBSERVABILITY.md``).  A server
        authenticated with a non-admin tenant answers with
        :class:`~repro.errors.AuthError`.
        """
        return wire.decode_obs_stats(
            self._call(wire.T_OBS_STATS, b"", wire.R_OBS_STATS)
        )

    @property
    def stored_bytes(self) -> int:
        return wire.decode_int(self._call(wire.T_STORED_BYTES, b"", wire.R_INT))
