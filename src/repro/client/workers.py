"""Process-parallel encode workers for the comm engine (§4.6 scaling).

CPython's GIL serialises the Python-level share bookkeeping between the
GIL-releasing hashlib/OpenSSL calls, so a thread pool cannot reproduce the
paper's near-linear encoding speedup (Figure 5a).  This module supplies the
pool that can: slabs of secrets are shipped to worker *processes*, each of
which rebuilds the client's codec once from a picklable **codec spec**
(:meth:`repro.core.convergent.ConvergentDispersal.spec`), caches it for the
life of the worker, and encodes the whole slab with the batched kernels
(:meth:`~repro.core.convergent.ConvergentDispersal.encode_batch`).

Design notes:

* **Per-worker codec cache** — generator matrices and decode caches are
  rebuilt once per (spec, worker) pair, not once per slab; repeated uploads
  reuse the warm codec.
* **Slabs, not secrets** — one IPC round-trip per ~1 MB slab instead of per
  8 KB secret keeps pickling overhead well under the encode cost and gives
  each worker a batch large enough for the vectorised kernels to pay off.
* **Warm-up before threads** — the pool forks its workers eagerly (see
  :meth:`ProcessEncodePool.warm`) so no worker inherits a transiently held
  lock from the comm engine's cloud-worker threads.
"""

from __future__ import annotations

from bisect import bisect_right
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Sequence

from repro.core.convergent import ConvergentDispersal
from repro.errors import ParameterError
from repro.sharing.base import ShareSet

__all__ = [
    "ENCODE_SLAB_BYTES",
    "WORKER_MODES",
    "ProcessEncodePool",
    "SlabbedShareSets",
    "encode_slab_in_worker",
    "slab_spans",
]

#: Supported encode-pool flavours (``CommEngine(workers=...)``).
WORKER_MODES = ("thread", "process")

#: Target bytes of secrets per encode slab.  Big enough that pickling and
#: scheduling are noise next to the encode work; small enough that a file
#: splits into several slabs and encoding overlaps transfer per §4.6.
ENCODE_SLAB_BYTES = 1 << 20

#: Worker-process codec cache: spec tuple -> live dispersal.  Populated
#: lazily inside each worker; never shared across processes.
_WORKER_CODECS: dict[tuple, ConvergentDispersal] = {}


def _codec_for(spec: tuple) -> ConvergentDispersal:
    codec = _WORKER_CODECS.get(spec)
    if codec is None:
        codec = ConvergentDispersal.from_spec(spec)
        _WORKER_CODECS[spec] = codec
    return codec


def encode_slab_in_worker(spec: tuple, secrets: list[bytes]) -> list[ShareSet]:
    """Encode one slab inside a worker process (top level, so picklable)."""
    return _codec_for(spec).encode_batch(secrets)


def _worker_warmup() -> None:
    """No-op task used to fork pool workers eagerly."""


def slab_spans(
    sizes: Sequence[int],
    width: int,
    slab_bytes: int = ENCODE_SLAB_BYTES,
) -> list[tuple[int, int]]:
    """Split ``len(sizes)`` secrets into contiguous ``[start, end)`` slabs.

    Aims for ``slab_bytes`` per slab but always produces at least
    ``2 * width`` slabs (when there are that many secrets) so a pool of
    ``width`` workers load-balances even when one slab runs long.
    """
    count = len(sizes)
    if count == 0:
        return []
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    total = sum(sizes)
    wanted = max(2 * width, -(-total // slab_bytes)) if width > 1 else max(
        1, -(-total // slab_bytes)
    )
    wanted = min(wanted, count)
    target = -(-total // wanted)
    spans: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for i, size in enumerate(sizes):
        acc += size
        if acc >= target:
            spans.append((start, i + 1))
            start = i + 1
            acc = 0
    if start < count:
        spans.append((start, count))
    return spans


class SlabbedShareSets:
    """Ordered view over the ShareSets of in-flight encode slabs.

    Indexing by global secret sequence blocks only on the slab that holds
    that secret, so each cloud worker drains slabs in order while later
    slabs are still encoding — the Figure 4(a) pipelining at slab
    granularity.  Safe for concurrent readers: :meth:`Future.result` is
    thread-safe and caches its value.
    """

    def __init__(self, futures: Sequence[Future], spans: Sequence[tuple[int, int]]) -> None:
        if len(futures) != len(spans):
            raise ParameterError(
                f"got {len(futures)} futures for {len(spans)} spans"
            )
        self._futures = list(futures)
        self._starts = [start for start, _ in spans]
        self._count = spans[-1][1] if spans else 0

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, seq: int) -> ShareSet:
        if not 0 <= seq < self._count:
            raise IndexError(f"secret sequence {seq} outside [0, {self._count})")
        slab = bisect_right(self._starts, seq) - 1
        return self._futures[slab].result()[seq - self._starts[slab]]


class ProcessEncodePool:
    """A :class:`ProcessPoolExecutor` that encodes slabs via codec specs.

    The pool is constructed lazily but forked eagerly (:meth:`warm`), and
    every submission ships ``(spec, secrets)`` — never live codec objects —
    so the only requirement on the dispersal is a non-None
    :meth:`~repro.core.convergent.ConvergentDispersal.spec`.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        self.width = width
        self._pool: ProcessPoolExecutor | None = None

    def warm(self) -> None:
        """Start the pool and fork all workers now.

        Forking before the comm engine's cloud-worker threads get busy
        means no child can inherit a lock held mid-operation by a sibling
        thread.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.width)
            for future in [
                self._pool.submit(_worker_warmup) for _ in range(self.width)
            ]:
                future.result()

    def submit(
        self, dispersal: ConvergentDispersal, secrets: list[bytes]
    ) -> Future:
        """Encode ``secrets`` on a worker; resolves to a ShareSet list."""
        spec = dispersal.spec()
        if spec is None:
            raise ParameterError(
                f"dispersal for scheme {dispersal.scheme!r} has no picklable "
                "spec; process workers cannot encode it"
            )
        self.warm()
        assert self._pool is not None
        return self._pool.submit(encode_slab_in_worker, spec, secrets)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
