"""Figure 5(a) — encoding speed vs number of threads, (n, k) = (4, 3).

Paper: all three codecs speed up with threads; CAONT-RS (OAEP-based AONT)
is the fastest, beating CAONT-RS-Rivest by 40-61 % and AONT-RS by 12-35 %
on the authors' machines.

Two documented deviations in pure Python (see EXPERIMENTS.md):

* the per-word overhead of the Rivest transforms is amplified, so
  CAONT-RS's lead is *larger* than the paper's and the two Rivest-based
  codecs are nearly tied;
* CPython's GIL makes secret-level multi-threading counterproductive, so
  the thread sweep is printed for transparency but the asserted claim is
  the hardware-independent one: CAONT-RS is the fastest codec at every
  thread count.
"""

from conftest import emit

from repro.bench.encoding import FIGURE5_SCHEMES, _make_secrets, encoding_speed
from repro.bench.reporting import format_table

DATA_BYTES = 1 << 20  # scaled from the paper's 2 GB (pure-Python speeds)
THREADS = (1, 2, 3, 4)


def test_fig5a(benchmark):
    secrets = _make_secrets(DATA_BYTES)

    def run():
        return [
            encoding_speed(scheme, threads=t, secrets=secrets)
            for scheme in FIGURE5_SCHEMES
            for t in THREADS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["scheme", "threads", "MB/s"],
        [[r.scheme, r.threads, r.mbps] for r in results],
        title="Figure 5(a): encoding speed vs #threads, (n, k)=(4, 3)",
    )
    emit("fig5a", table)

    speed = {(r.scheme, r.threads): r.mbps for r in results}
    # CAONT-RS is the fastest codec at every thread count.
    for t in THREADS:
        assert speed[("caont-rs", t)] > speed[("aont-rs", t)]
        assert speed[("caont-rs", t)] > speed[("caont-rs-rivest", t)]
