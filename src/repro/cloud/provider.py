"""Simulated cloud providers.

A :class:`CloudProvider` bundles what Figure 1 puts inside one cloud: the
storage backend, the co-locating VM that will host a CDStore server, and
the Internet links between the user's site and the cloud.  Failure
injection (:meth:`fail` / :meth:`recover`) drives the reliability
experiments: a failed cloud rejects every operation, and CDStore must
restore from the remaining ``k``.
"""

from __future__ import annotations

from repro.cloud.network import Link
from repro.errors import CloudUnavailableError
from repro.storage.backend import MemoryBackend, StorageBackend

__all__ = ["CloudProvider"]


class CloudProvider:
    """One cloud: backend + links + availability state.

    Parameters
    ----------
    name:
        Provider label ("amazon", "google", ...).
    uplink / downlink:
        Client-to-cloud and cloud-to-client links (Table 2 speeds for the
        commercial testbed; 1 Gb/s for the LAN testbed).
    backend:
        Storage backend; defaults to a fresh :class:`MemoryBackend`.

    The intra-cloud path between the VM and the storage backend is free and
    unmetered, matching the billing assumption of §3.1.
    """

    def __init__(
        self,
        name: str,
        uplink: Link,
        downlink: Link,
        backend: StorageBackend | None = None,
    ) -> None:
        self.name = name
        self.uplink = uplink
        self.downlink = downlink
        self.backend = backend if backend is not None else MemoryBackend()
        self._available = True

    # ------------------------------------------------------------------
    # availability / failure injection
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        return self._available

    def fail(self) -> None:
        """Take the cloud offline (outage injection)."""
        self._available = False

    def recover(self) -> None:
        """Bring the cloud back online."""
        self._available = True

    def wipe(self) -> None:
        """Destroy all stored objects (permanent-loss injection).

        Models the vendor-termination scenario of §1 (e.g. Nirvanix): the
        cloud comes back empty and CDStore must repair every share onto it.
        """
        for key in self.backend.list_keys():
            self.backend.delete_object(key)

    def check_available(self) -> None:
        """Raise :class:`CloudUnavailableError` if the cloud is down."""
        if not self._available:
            raise CloudUnavailableError(f"cloud {self.name!r} is unavailable")

    # ------------------------------------------------------------------
    # metered object API (used by the CDStore server on this cloud's VM)
    # ------------------------------------------------------------------
    def put_object(self, key: str, data: bytes) -> None:
        self.check_available()
        self.backend.put_object(key, data)

    def get_object(self, key: str) -> bytes:
        self.check_available()
        return self.backend.get_object(key)

    def exists(self, key: str) -> bool:
        self.check_available()
        return self.backend.exists(key)

    @property
    def stored_bytes(self) -> int:
        """Bytes currently stored (ignores availability: billing survives
        outages)."""
        return self.backend.stored_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._available else "DOWN"
        return f"CloudProvider({self.name!r}, {state})"
