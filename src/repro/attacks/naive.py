"""The vulnerable strawman: client-side global deduplication (§3.3).

"A naïve approach is to perform global deduplication on the client side
... it checks with the cloud by fingerprint for the existence of any
duplicate data that has been uploaded by *any* user", and ownership is
recorded from the client-supplied fingerprint.  Both behaviours are what
the side-channel attacks exploit; this class implements them honestly so
the attacks in :mod:`repro.attacks.side_channel` can demonstrate the
leak — and so the contrast with :class:`~repro.server.server.CDStoreServer`
is an executable security argument rather than prose.
"""

from __future__ import annotations

from repro.errors import NotFoundError

__all__ = ["NaiveGlobalDedupServer"]


class NaiveGlobalDedupServer:
    """Single-cloud dedup storage with client-side global deduplication."""

    def __init__(self) -> None:
        self._shares: dict[bytes, bytes] = {}
        self._owners: dict[bytes, set[str]] = {}

    # ------------------------------------------------------------------
    def query_duplicates(self, user_id: str, fingerprints: list[bytes]) -> list[bool]:
        """VULNERABLE: answers from the *global* share index.

        The reply tells any user whether *any other* user already stores
        each fingerprint — the existence side channel of [28].
        """
        return [fp in self._shares for fp in fingerprints]

    def upload(self, user_id: str, fingerprint: bytes, data: bytes | None) -> None:
        """VULNERABLE: trusts the client's fingerprint.

        When the fingerprint is known, the server records ownership
        *without requiring the bytes* — "convincing the cloud of the data
        ownership" with a fingerprint alone, the attack of [27].
        """
        if fingerprint in self._shares:
            self._owners[fingerprint].add(user_id)
            return
        if data is None:
            raise NotFoundError("unknown fingerprint requires data upload")
        self._shares[fingerprint] = data
        self._owners[fingerprint] = {user_id}

    def download(self, user_id: str, fingerprint: bytes) -> bytes:
        """Serve the share to any registered owner."""
        owners = self._owners.get(fingerprint, set())
        if user_id not in owners:
            raise NotFoundError(f"user {user_id!r} does not own this share")
        return self._shares[fingerprint]
