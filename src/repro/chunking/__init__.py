"""Chunking substrate (§4.2): fixed-size and Rabin variable-size chunkers.

A CDStore client splits each backup file into *secrets* (chunks) before
convergent dispersal.  Variable-size chunking — content-defined boundaries
from a Rabin rolling fingerprint [49] — is the default because it is robust
to content shifting; the paper configures average/min/max chunk sizes of
8 KB / 2 KB / 16 KB.
"""

from repro.chunking.base import Chunk, Chunker
from repro.chunking.fixed import FixedChunker
from repro.chunking.rabin import RabinChunker

__all__ = ["Chunk", "Chunker", "FixedChunker", "RabinChunker"]
