"""CDStore client implementation.

Upload pipeline (Figure 4a):

1. **chunking module** — variable-size (Rabin) chunking into ~8 KB secrets;
2. **coding module** — CAONT-RS encoding of each secret into ``n`` shares,
   parallelisable across secrets with a thread pool (§4.6);
3. **intra-user deduplication** — one fingerprint query per cloud; only
   shares this user never uploaded travel further (§3.3 stage 1);
4. **comm module** — unique shares batched per cloud (4 MB units, §4.1);
5. **metadata offloading** — per-share metadata and the file manifest
   (with the pathname dispersed via Shamir sharing, §4.3) finalise the
   upload on every server.

Download reverses the pipeline from any ``k`` reachable clouds, with the
brute-force subset retry of §3.2 on integrity failure.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.chunking.base import Chunk, Chunker
from repro.chunking.rabin import RabinChunker
from repro.core.convergent import ConvergentDispersal
from repro.crypto.hashing import fingerprint, sha256
from repro.dedup.stats import DedupStats
from repro.errors import (
    CloudUnavailableError,
    InsufficientCloudsError,
    IntegrityError,
    ParameterError,
)
from repro.server.messages import FileManifest, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer
from repro.sharing.ssss import SSSS

__all__ = ["CDStoreClient", "UploadReceipt"]

#: Client-side upload batch size (§4.1: "batch the shares ... in a 4MB
#: buffer and upload the buffer when it is full").
UPLOAD_BATCH_BYTES = 4 << 20


@dataclass
class UploadReceipt:
    """Summary of one file upload."""

    path: str
    file_size: int
    secret_count: int
    logical_share_bytes: int
    transferred_share_bytes: int
    #: Wire bytes sent to each cloud (drives the simulated transfer times).
    wire_bytes_per_cloud: list[int] = field(default_factory=list)

    @property
    def intra_user_saving(self) -> float:
        if self.logical_share_bytes == 0:
            return 0.0
        return 1.0 - self.transferred_share_bytes / self.logical_share_bytes


class CDStoreClient:
    """A user's CDStore client bound to ``n`` servers.

    Parameters
    ----------
    user_id:
        Identifies the user for intra-user deduplication and file naming.
    servers:
        The ``n`` CDStore servers, ordered by cloud index.
    k:
        Reconstruction threshold (``n`` is implied by ``len(servers)``).
    salt:
        Organisation-wide convergent salt (shared by all clients of the
        organisation so their data deduplicates against each other).
    chunker:
        Defaults to the paper's 8 KB-average Rabin chunker.
    scheme:
        Convergent codec name (default ``"caont-rs"``).
    threads:
        Encoding thread count (§4.6); 1 disables the pool.
    """

    def __init__(
        self,
        user_id: str,
        servers: list[CDStoreServer],
        k: int,
        salt: bytes = b"",
        chunker: Chunker | None = None,
        scheme: str = "caont-rs",
        threads: int = 1,
        codec=None,
    ) -> None:
        if not servers:
            raise ParameterError("need at least one server")
        if threads < 1:
            raise ParameterError(f"threads must be >= 1, got {threads}")
        self.user_id = user_id
        self.servers = list(servers)
        self.n = len(servers)
        self.k = k
        self.threads = threads
        self.dispersal = ConvergentDispersal(
            self.n, k, scheme=scheme, salt=salt, codec=codec
        )
        self.chunker = chunker if chunker is not None else RabinChunker()
        self._path_sharer = SSSS(self.n, k)
        self.stats = DedupStats()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _lookup_key(self, path: str) -> bytes:
        """File-index key: hash of pathname + user identifier (§4.4)."""
        return sha256(self.user_id.encode("utf-8") + b"\x00" + path.encode("utf-8"))

    def _encode_chunks(self, chunks: list[Chunk]):
        """Encode secrets into share sets, optionally with a thread pool."""
        if self.threads == 1 or len(chunks) < 2:
            return [self.dispersal.encode(chunk.data) for chunk in chunks]
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            return list(pool.map(lambda c: self.dispersal.encode(c.data), chunks))

    # ------------------------------------------------------------------
    # upload (backup)
    # ------------------------------------------------------------------
    def upload(self, path: str, data: bytes) -> UploadReceipt:
        """Back up ``data`` under ``path`` across all ``n`` clouds.

        Requires every cloud to be reachable (backups write to all ``n``;
        restores are what tolerate failures).
        """
        for server in self.servers:
            server.cloud.check_available()
        chunks = list(self.chunker.chunk_bytes(data))
        share_sets = self._encode_chunks(chunks)

        self.stats.logical_data += len(data)
        self.stats.secrets_total += len(chunks)

        # Per-cloud share streams with client-domain fingerprints.
        metas: list[list[ShareMeta]] = [[] for _ in range(self.n)]
        payloads: list[list[bytes]] = [[] for _ in range(self.n)]
        for chunk, share_set in zip(chunks, share_sets):
            for cloud_idx, share in enumerate(share_set.shares):
                metas[cloud_idx].append(
                    ShareMeta(
                        fingerprint=fingerprint(share, domain="client"),
                        share_size=len(share),
                        secret_seq=chunk.seq,
                        secret_size=chunk.size,
                    )
                )
                payloads[cloud_idx].append(share)
                self.stats.logical_shares += len(share)
                self.stats.shares_total += 1

        # Stage 1: intra-user deduplication, one query per cloud (§3.3).
        transferred_total = 0
        transferred_count = 0
        wire_per_cloud: list[int] = []
        for cloud_idx, server in enumerate(self.servers):
            cloud_metas = metas[cloud_idx]
            known = server.query_duplicates(
                self.user_id, [meta.fingerprint for meta in cloud_metas]
            )
            seen_in_batch: set[bytes] = set()
            batch: list[ShareUpload] = []
            batch_bytes = 0
            wire_bytes = 0

            def flush_batch() -> None:
                nonlocal batch, batch_bytes
                if batch:
                    server.upload_shares(self.user_id, batch)
                    batch = []
                    batch_bytes = 0

            for meta, payload, is_known in zip(cloud_metas, payloads[cloud_idx], known):
                if is_known or meta.fingerprint in seen_in_batch:
                    continue
                seen_in_batch.add(meta.fingerprint)
                batch.append(ShareUpload(meta=meta, data=payload))
                batch_bytes += len(payload)
                wire_bytes += len(payload)
                transferred_count += 1
                if batch_bytes >= UPLOAD_BATCH_BYTES:
                    flush_batch()
            flush_batch()
            transferred_total += wire_bytes
            wire_per_cloud.append(wire_bytes)

        self.stats.transferred_shares += transferred_total
        self.stats.shares_transferred += transferred_count

        # Metadata offloading: manifest + full share metadata (§4.3).
        lookup_key = self._lookup_key(path)
        path_shares = self._path_sharer.split(path.encode("utf-8")).shares
        for cloud_idx, server in enumerate(self.servers):
            manifest = FileManifest(
                lookup_key=lookup_key,
                path_share=path_shares[cloud_idx],
                file_size=len(data),
                secret_count=len(chunks),
            )
            server.finalize_file(self.user_id, manifest, metas[cloud_idx])

        return UploadReceipt(
            path=path,
            file_size=len(data),
            secret_count=len(chunks),
            logical_share_bytes=sum(
                meta.share_size for cloud_metas in metas for meta in cloud_metas
            ),
            transferred_share_bytes=transferred_total,
            wire_bytes_per_cloud=wire_per_cloud,
        )

    # ------------------------------------------------------------------
    # download (restore)
    # ------------------------------------------------------------------
    def _reachable_servers(self) -> list[CDStoreServer]:
        return [server for server in self.servers if server.cloud.available]

    def download(self, path: str) -> bytes:
        """Restore the file stored under ``path`` from any ``k`` clouds."""
        reachable = self._reachable_servers()
        if len(reachable) < self.k:
            raise InsufficientCloudsError(
                f"only {len(reachable)} of {self.n} clouds reachable; "
                f"need k={self.k}"
            )
        lookup_key = self._lookup_key(path)
        chosen = reachable[: self.k]
        spare = reachable[self.k :]

        recipes = {}
        file_size = None
        secret_count = None
        for server in chosen:
            entry = server.get_file_entry(self.user_id, lookup_key)
            recipes[server.server_id] = server.get_recipe(self.user_id, lookup_key)
            file_size = entry.file_size
            secret_count = entry.secret_count
        lengths = {len(r) for r in recipes.values()}
        if len(lengths) != 1 or lengths.pop() != secret_count:
            raise IntegrityError("servers disagree on recipe length")

        # Fetch all shares per server in one locality-friendly call.
        shares_by_server: dict[int, dict[bytes, bytes]] = {}
        for server in chosen:
            recipe = recipes[server.server_id]
            shares_by_server[server.server_id] = server.fetch_shares(
                [entry.fingerprint for entry in recipe]
            )

        parts: list[bytes] = []
        for seq in range(secret_count):
            secret_size = recipes[chosen[0].server_id][seq].secret_size
            shares = {
                server.server_id: shares_by_server[server.server_id][
                    recipes[server.server_id][seq].fingerprint
                ]
                for server in chosen
            }
            try:
                parts.append(self.dispersal.decode(shares, secret_size))
            except IntegrityError:
                # Brute-force fallback (§3.2): widen the share pool with the
                # remaining reachable clouds and retry all k-subsets.
                widened = dict(shares)
                for server in spare:
                    recipe = server.get_recipe(self.user_id, lookup_key)
                    fetched = server.fetch_shares([recipe[seq].fingerprint])
                    widened[server.server_id] = fetched[recipe[seq].fingerprint]
                parts.append(self.dispersal.decode(widened, secret_size))
        result = b"".join(parts)
        if file_size is not None and len(result) != file_size:
            raise IntegrityError(
                f"restored size {len(result)} != recorded size {file_size}"
            )
        return result

    def list_files(self) -> list[str]:
        """List this user's stored pathnames.

        Pathnames are dispersed via Shamir sharing across the servers
        (§4.3 sensitive metadata), so listing needs any ``k`` reachable
        clouds — the same availability contract as restore.
        """
        reachable = self._reachable_servers()
        if len(reachable) < self.k:
            raise InsufficientCloudsError(
                f"only {len(reachable)} of {self.n} clouds reachable; "
                f"need k={self.k}"
            )
        chosen = reachable[: self.k]
        listings = {
            server.server_id: dict(server.list_files(self.user_id))
            for server in chosen
        }
        keys = set.intersection(*(set(l) for l in listings.values()))
        paths = []
        for lookup_key in keys:
            shares = {
                sid: listing[lookup_key].path_share
                for sid, listing in listings.items()
            }
            size = len(next(iter(shares.values())))
            paths.append(
                self._path_sharer.recover(shares, size).decode("utf-8")
            )
        return sorted(paths)

    # ------------------------------------------------------------------
    # deletion (extension; the paper defers GC to future work, §4.7)
    # ------------------------------------------------------------------
    def delete(self, path: str) -> None:
        """Delete the file on every reachable cloud."""
        lookup_key = self._lookup_key(path)
        for server in self.servers:
            if not server.cloud.available:
                raise CloudUnavailableError(
                    f"cloud {server.cloud.name!r} is down; deletion must "
                    "reach all clouds"
                )
        for server in self.servers:
            server.delete_file(self.user_id, lookup_key)

    def flush(self) -> None:
        """Seal open containers on every server (end of a session)."""
        for server in self.servers:
            server.flush()
