"""Client-side blind key derivation.

Derivation of the convergent key for chunk ``X``:

1. ``x = FDH(salt || X)`` — full-domain hash into the RSA group;
2. pick random ``r``; send ``x · r^e mod N`` to the key server;
3. receive ``s' = (x · r^e)^d = x^d · r mod N``;
4. unblind: ``s = s' · r⁻¹ = x^d mod N``;
5. verify ``s^e == x mod N`` (an actively-misbehaving server is caught);
6. key = SHA-256(s).

``s`` depends only on the chunk (and the server's key), so two clients of
the same organisation derive the *same* key for the same chunk — exactly
the determinism deduplication needs — yet nobody can compute it offline.
"""

from __future__ import annotations

import hashlib
import math

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import CryptoError
from repro.keyserver.rsa import full_domain_hash
from repro.keyserver.server import KeyServer

__all__ = ["KeyClient"]


class KeyClient:
    """Derives chunk keys through a :class:`KeyServer`.

    Parameters
    ----------
    client_id:
        Identity presented to the server (rate-limit principal).
    server:
        The key server (direct reference; the transport is out of scope).
    salt:
        Organisation-wide salt mixed into the hash, scoping deduplication
        exactly as CAONT-RS's salted hash does.
    rng:
        Optional deterministic RNG for reproducible blinding in tests.
    cache_size:
        Derived keys are memoised (by chunk hash) so re-uploads of known
        chunks spend no server budget.
    """

    def __init__(
        self,
        client_id: str,
        server: KeyServer,
        salt: bytes = b"",
        rng: DRBG | None = None,
        cache_size: int = 4096,
    ) -> None:
        self.client_id = client_id
        self.server = server
        self.salt = bytes(salt)
        self._rng = rng
        self._cache: dict[bytes, bytes] = {}
        self._cache_size = cache_size
        self.derivations = 0

    def _random_below(self, n: int) -> int:
        nbytes = (n.bit_length() + 7) // 8
        while True:
            raw = (
                self._rng.random_bytes(nbytes)
                if self._rng is not None
                else system_random_bytes(nbytes)
            )
            value = int.from_bytes(raw, "big")
            if 1 < value < n and math.gcd(value, n) == 1:
                return value

    def derive_key(self, chunk: bytes) -> bytes:
        """Derive the 32-byte convergent key for ``chunk``."""
        digest = hashlib.sha256(self.salt + chunk).digest()
        cached = self._cache.get(digest)
        if cached is not None:
            return cached
        n, e = self.server.public_key
        x = full_domain_hash(self.salt + chunk, n)
        r = self._random_below(n)
        blinded = x * pow(r, e, n) % n
        signed = self.server.sign_blinded(self.client_id, blinded)
        s = signed * pow(r, -1, n) % n
        if pow(s, e, n) != x:
            raise CryptoError("key server returned an invalid signature")
        key = hashlib.sha256(s.to_bytes((n.bit_length() + 7) // 8, "big")).digest()
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[digest] = key
        self.derivations += 1
        return key
