"""The sharded read gateway (``repro gateway``).

A gateway is read-side infrastructure between restore clients and the
serving replicas: it terminates client restore requests on the async mux
front-end, resolves each backup once, consistent-hash-shards the window
fetches across replicas (:class:`~repro.gateway.ring.HashRing`), and
keeps a bytes-bounded hot-container cache
(:class:`~repro.gateway.cache.HotContainerCache`) so that popular
backups are served from memory instead of hitting the same replicas over
and over.  The service itself is
:class:`~repro.gateway.service.GatewayService`; its wire surface
(``T_GW_RESOLVE`` / ``T_GW_WINDOW``) is documented in
``docs/PROTOCOL.md`` §8.

The gateway is deliberately *not* in the durability path: it holds no
authoritative state, performs no replica failover, and may be killed at
any time — clients fall back to the direct quorum restore (window-
granular spare failover, §3.2 share widening) whenever the gateway path
fails.
"""

from repro.gateway.cache import HotContainerCache
from repro.gateway.ring import HashRing
from repro.gateway.service import GATEWAY_WINDOW_BYTES, GatewayService

__all__ = [
    "GATEWAY_WINDOW_BYTES",
    "GatewayService",
    "HashRing",
    "HotContainerCache",
]
