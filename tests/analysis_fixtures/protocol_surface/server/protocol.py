"""WIRE-005 fixture: the declared API surface ../net/wire.py drifts from."""

from typing import Protocol


class FixtureServerAPI(Protocol):
    def upload(self, data: bytes) -> None: ...

    def unmapped_method(self) -> None: ...  # TRUE-POSITIVE: no METHOD_FRAMES mapping

    def close(self) -> None: ...  # in LOCAL_ONLY_METHODS: exempt
