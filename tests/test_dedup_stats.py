"""DedupStats arithmetic: the accounting behind Figure 6."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dedup.stats import DedupStats

sizes = st.integers(min_value=0, max_value=10**12)


class TestSavingsMetrics:
    def test_paper_definitions(self):
        """§5.4: intra = 1 - transferred/logical-shares;
        inter = 1 - physical/transferred."""
        stats = DedupStats(
            logical_data=100,
            logical_shares=400,
            transferred_shares=100,
            physical_shares=50,
        )
        assert stats.intra_user_saving == 0.75
        assert stats.inter_user_saving == 0.5
        assert stats.overall_saving == 0.875
        assert stats.dedup_ratio == 8.0

    def test_zero_denominators(self):
        empty = DedupStats()
        assert empty.intra_user_saving == 0.0
        assert empty.inter_user_saving == 0.0
        assert empty.overall_saving == 0.0
        assert empty.dedup_ratio == 1.0
        only_logical = DedupStats(logical_shares=100)
        assert only_logical.dedup_ratio == float("inf")

    @given(sizes, sizes, sizes)
    def test_savings_bounded(self, logical, transferred, physical):
        # Physically meaningful orderings only.
        logical_shares = logical
        transferred = min(transferred, logical_shares)
        physical = min(physical, transferred)
        stats = DedupStats(
            logical_shares=logical_shares,
            transferred_shares=transferred,
            physical_shares=physical,
        )
        assert 0.0 <= stats.intra_user_saving <= 1.0
        assert 0.0 <= stats.inter_user_saving <= 1.0
        assert 0.0 <= stats.overall_saving <= 1.0


class TestMergeAndDelta:
    def test_merge_accumulates(self):
        a = DedupStats(logical_data=10, logical_shares=40, transferred_shares=20, physical_shares=5)
        b = DedupStats(logical_data=1, logical_shares=4, transferred_shares=2, physical_shares=1)
        a.merge(b)
        assert a.logical_data == 11
        assert a.physical_shares == 6

    def test_delta_is_inverse_of_accumulation(self):
        stats = DedupStats(logical_data=100, logical_shares=400)
        before = stats.snapshot()
        stats.logical_data += 7
        stats.logical_shares += 28
        weekly = stats.delta(before)
        assert weekly.logical_data == 7
        assert weekly.logical_shares == 28

    def test_snapshot_is_independent(self):
        stats = DedupStats(logical_data=5)
        snap = stats.snapshot()
        stats.logical_data = 99
        assert snap.logical_data == 5

    @given(sizes, sizes)
    def test_delta_of_self_is_zero(self, a, b):
        stats = DedupStats(logical_data=a, physical_shares=b)
        zero = stats.delta(stats.snapshot())
        assert zero.logical_data == 0
        assert zero.physical_shares == 0
