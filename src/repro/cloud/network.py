"""Network link models and the simulated clock.

Transfer-speed experiments need only two ingredients: per-connection links
with bandwidth and latency, and a clock that understands parallel transfers
(CDStore's client uploads to all clouds concurrently via multi-threading,
§4.6, so wall-clock time is the *maximum* over per-cloud times, further
bounded by the client's shared physical uplink).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["Link", "SimClock", "batch_count", "makespan", "pipeline_makespan"]

MB = 1_000_000.0


def makespan(durations: list[float], shared_floor: float = 0.0) -> float:
    """Wall-clock span of concurrent activities (§4.6).

    A multi-threaded client drives all cloud connections at once, so the
    elapsed time is the *maximum* over per-connection durations, bounded
    below by any shared resource (e.g. the client's physical uplink).
    """
    return max(durations + [shared_floor]) if durations else shared_floor


def pipeline_makespan(stage_times: list[list[float]]) -> float:
    """Makespan of a windowed pipeline: ``stage_times[s][w]`` is the time
    stage ``s`` spends on window ``w``.

    Classic permutation-flow-shop recurrence with unbounded buffers: a
    stage starts window ``w`` once it finished window ``w - 1`` *and* the
    previous stage finished window ``w``.  With one window this is the
    serial stage sum; as windows shrink it approaches ``max`` over stage
    totals — the overlap the comm engine's streaming transfer stage
    (``pipeline_depth > 1``) realises, where wire time hides behind
    encoding (§4.6).
    """
    if not stage_times:
        return 0.0
    widths = {len(stage) for stage in stage_times}
    if len(widths) > 1:
        raise ParameterError(
            f"stages disagree on window count: {sorted(widths)}"
        )
    finish = [0.0] * len(stage_times[0])
    for stage in stage_times:
        prev_in_stage = 0.0
        for w, cost in enumerate(stage):
            prev_in_stage = max(prev_in_stage, finish[w]) + cost
            finish[w] = prev_in_stage
    return finish[-1] if finish else 0.0


def batch_count(nbytes: float, unit: int = 4 << 20) -> int:
    """Number of 4 MB transfer units for ``nbytes`` (§4.1 batching).

    The single source of truth for batch-latency accounting: the comm
    engine, the testbed model and the bench helpers all charge one link
    round trip per unit returned here.
    """
    return max(1, int(-(-nbytes // unit)))


@dataclass(frozen=True)
class Link:
    """A one-directional network path.

    Parameters
    ----------
    bandwidth_mbps:
        Sustained throughput in MB/s (decimal megabytes, as the paper's
        tables use).
    latency_s:
        Per-request round-trip setup cost charged once per batch (CDStore
        batches shares in 4 MB units precisely to amortise this, §4.1).
    """

    bandwidth_mbps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ParameterError(
                f"bandwidth must be positive, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ParameterError(f"latency must be >= 0, got {self.latency_s}")

    def transfer_time(self, nbytes: int, batches: int = 1) -> float:
        """Seconds to move ``nbytes`` split into ``batches`` requests."""
        if nbytes < 0:
            raise ParameterError(f"negative byte count {nbytes}")
        return nbytes / (self.bandwidth_mbps * MB) + self.latency_s * max(batches, 1)


class SimClock:
    """Accumulates simulated seconds, with a parallel-section helper.

    Thread-safe: advances from concurrent callers are serialised so none
    is lost.  Note the accounting is *additive* — a clock shared by
    clients whose operations overlap in real time records the sum of
    their spans (total transfer work), not their combined makespan; model
    cross-client concurrency with :meth:`advance_parallel` instead.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> None:
        """Advance the clock by a serial cost."""
        if seconds < 0:
            raise ParameterError(f"cannot advance clock by {seconds}")
        with self._lock:
            self.now += seconds

    def advance_parallel(self, durations: list[float], shared_floor: float = 0.0) -> float:
        """Advance by the makespan of concurrent activities.

        ``durations`` are per-connection times; ``shared_floor`` is a lower
        bound imposed by a shared resource (e.g. total bytes over the
        client's physical uplink).  Returns the elapsed span.
        """
        span = makespan(durations, shared_floor)
        self.advance(span)
        return span
