"""Table 2 — measured speeds of each of the four commercial clouds.

Paper (MB/s): Amazon 5.87/4.45, Google 4.99/4.45, Azure 19.59/13.78,
Rackspace 19.42/12.93 for 2 GB moved in 4 MB units.  Our simulated links
are calibrated to those values; the per-request latency charged per 4 MB
unit keeps the observed numbers a few percent under the raw bandwidths,
as a real measurement would be.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.transfer import cloud_speed_table
from repro.cloud.testbed import CLOUD_LINKS, cloud_testbed

PAPER = {name: links for name, links in CLOUD_LINKS.items()}


def test_table2(benchmark):
    testbed = cloud_testbed()
    rows = benchmark(cloud_speed_table, testbed)

    table = format_table(
        ["cloud", "upload MB/s", "download MB/s", "paper up", "paper down"],
        [
            [r.cloud, r.upload_mbps, r.download_mbps, *PAPER[r.cloud]]
            for r in rows
        ],
        title="Table 2: per-cloud speeds, 2 GB in 4 MB units",
    )
    emit("table2", table)

    for r in rows:
        paper_up, paper_down = PAPER[r.cloud]
        # Within 15% of the paper's measurements.
        assert abs(r.upload_mbps - paper_up) / paper_up < 0.15
        assert abs(r.download_mbps - paper_down) / paper_down < 0.15
