"""Ablation — restore fragmentation growth across backup generations.

§5.5: "The download speed will gradually degrade due to fragmentation as
we store more backups."  This ablation runs a weekly backup series through
the *real* system, measures container locality of each generation's
restore with :mod:`repro.analysis.fragmentation`, and checks the paper's
qualitative claim: later generations touch more containers per restored
byte than the first.
"""

from conftest import emit

from repro.analysis import analyze_fragmentation
from repro.bench.reporting import format_table
from repro.chunking import FixedChunker
from repro.config import ReproConfig
from repro.crypto.drbg import DRBG
from repro.system import CDStoreSystem


def test_ablation_fragmentation(benchmark):
    def run():
        system = CDStoreSystem.from_config(
            ReproConfig(n=4, k=3, salt="org", chunker="fixed:size=4096")
        )
        client = system.client("alice", chunker=FixedChunker(4096))
        rng = DRBG("frag-weeks")
        chunks = [rng.random_bytes(4096) for _ in range(60)]
        reports = []
        for week in range(6):
            # Each week modifies ~10% of chunks, scattering new chunks into
            # fresh containers while most references point at old ones.
            for _ in range(6):
                chunks[rng.randint(0, len(chunks) - 1)] = rng.random_bytes(4096)
            data = b"".join(chunks)
            client.upload(f"/w{week}", data)
            client.flush()
            report = analyze_fragmentation(
                system.servers[0], "alice", client._lookup_key(f"/w{week}")
            )
            reports.append((week, report))
            assert client.download(f"/w{week}") == data
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["week", "containers accessed", "container switches", "frag score"],
        [
            [week, r.containers_accessed, r.container_switches, r.fragmentation_score]
            for week, r in reports
        ],
        title="Ablation: restore fragmentation across weekly backups",
    )
    emit("ablation_fragmentation", table)

    first = reports[0][1]
    last = reports[-1][1]
    # Later backups scatter across more containers and lose locality.
    assert last.containers_accessed > first.containers_accessed
    assert last.fragmentation_score > first.fragmentation_score
    assert first.fragmentation_score == 0.0  # fresh backup is sequential
