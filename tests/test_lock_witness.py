"""Lock-order witness tests: graph properties, ABBA capture, Condition compat.

Isolation note: when the suite runs under ``REPRO_LOCK_WITNESS=1`` the
global witness wraps every ``threading.Lock()`` allocated anywhere —
including locks a test creates for itself.  A deliberately inverted pair
built from ``threading.Lock`` would therefore poison the *session*
graph and fail the run at sessionfinish.  Every test here builds its
locks from ``_thread.allocate_lock()`` (never patched) and drives a
private :class:`LockWitness`, so the deliberate cycles stay local.
"""

from __future__ import annotations

import _thread
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.witness import (
    LockOrderError,
    LockOrderGraph,
    LockWitness,
    WitnessedLock,
    install,
)


def make_witness() -> LockWitness:
    return LockWitness(meta_lock_factory=_thread.allocate_lock)


def make_lock(site: str, witness: LockWitness) -> WitnessedLock:
    return WitnessedLock(_thread.allocate_lock(), site, witness)


def _is_dag(edges: dict[str, set[str]]) -> bool:
    """Kahn's algorithm — an implementation-independent cycle oracle."""
    nodes = set(edges) | {succ for succs in edges.values() for succ in succs}
    indegree = {node: 0 for node in nodes}
    for succs in edges.values():
        for succ in succs:
            indegree[succ] += 1
    queue = [node for node in nodes if indegree[node] == 0]
    removed = 0
    while queue:
        node = queue.pop()
        removed += 1
        for succ in edges.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    return removed == len(nodes)


# ---------------------------------------------------------------------------
# Graph properties


_SITES = st.sampled_from(["a.py:1", "b.py:2", "c.py:3", "d.py:4"])
_CHAINS = st.lists(
    st.lists(_SITES, min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=8,
)


@settings(max_examples=200, deadline=None)
@given(chains=_CHAINS)
def test_cycle_detection_matches_topological_oracle(chains):
    """Random nested-acquisition schedules: cycles reported iff not a DAG.

    Each chain models one virtual thread acquiring locks in order while
    holding all earlier ones — exactly what the runtime witness feeds the
    graph, minus the threads.
    """
    graph = LockOrderGraph()
    for chain in chains:
        for i, site in enumerate(chain):
            graph.add_acquisition(chain[:i], site)
    assert bool(graph.cycles) == (not _is_dag(graph.edges))
    # Canonicalisation dedups: no cycle is reported twice.
    assert len(graph.cycles) == len(set(graph.cycles))


def test_reentrant_self_edge_is_ignored():
    graph = LockOrderGraph()
    graph.add_acquisition(["a.py:1"], "a.py:1")
    assert graph.edges == {}
    assert graph.cycles == []


def test_three_way_cycle_without_pairwise_inversion():
    # A->B, B->C, C->A: no two locks are ever inverted pairwise, yet the
    # triangle deadlocks three threads. The DFS must find it.
    graph = LockOrderGraph()
    graph.add_acquisition(["A"], "B")
    graph.add_acquisition(["B"], "C")
    assert graph.cycles == []
    graph.add_acquisition(["C"], "A")
    assert graph.cycles == [("A", "B", "C")]


# ---------------------------------------------------------------------------
# The deliberate ABBA fixture


def test_abba_acquisition_order_is_reported():
    """Taking two locks in both orders — serially, so nothing actually
    deadlocks — must still be reported as a potential deadlock."""
    witness = make_witness()
    la = make_lock("net/client.py:10", witness)
    lb = make_lock("server/index.py:20", witness)

    with la:
        with lb:
            pass
    witness.assert_no_cycles()  # one order alone is fine

    with lb:
        with la:
            pass
    with pytest.raises(LockOrderError, match="potential deadlock") as excinfo:
        witness.assert_no_cycles()
    assert "net/client.py:10" in str(excinfo.value)
    assert "server/index.py:20" in str(excinfo.value)


def test_witness_held_stacks_are_per_thread():
    witness = make_witness()
    la = make_lock("x.py:1", witness)
    lb = make_lock("y.py:2", witness)

    def nested():
        with la:
            with lb:
                pass

    worker = threading.Thread(target=nested, name="witness-worker")
    worker.start()
    worker.join()
    # The worker's nesting was recorded; the main thread held nothing.
    assert witness.graph.edges == {"x.py:1": {"y.py:2"}}
    assert witness._stack() == []


def test_out_of_order_release_keeps_bookkeeping_sane():
    witness = make_witness()
    l1 = make_lock("s1", witness)
    l2 = make_lock("s2", witness)
    l1.acquire()
    l2.acquire()
    l1.release()  # legal in Python, must not corrupt the held stack
    l2.release()
    assert witness._stack() == []
    assert witness.graph.edges == {"s1": {"s2"}}
    witness.assert_no_cycles()


# ---------------------------------------------------------------------------
# Condition compatibility


def test_witnessed_lock_backs_a_condition():
    witness = make_witness()
    lock = make_lock("cond.py:1", witness)
    cond = threading.Condition(lock)
    with cond:
        cond.notify_all()
        assert cond.wait(timeout=0.01) is False  # release/re-acquire cycle
    assert witness._stack() == []  # wait()'s save/restore stayed balanced
    assert not lock.locked()
    witness.assert_no_cycles()


# ---------------------------------------------------------------------------
# install()/uninstall()


@pytest.mark.skipif(
    os.environ.get("REPRO_LOCK_WITNESS") == "1",
    reason="global witness already owns threading.Lock; double-wrapping "
    "would report test-local locks to the session graph",
)
def test_install_patches_and_uninstall_restores():
    orig_lock, orig_rlock = threading.Lock, threading.RLock
    witness, uninstall = install()
    try:
        lock = threading.Lock()
        assert isinstance(lock, WitnessedLock)
        with lock:
            pass
        # The allocation site is this file, not threading.py.
        assert "test_lock_witness.py" in lock._name
        rlock = threading.RLock()
        with rlock:
            with rlock:  # re-entrant: self-edge, ignored
                pass
        witness.assert_no_cycles()
    finally:
        uninstall()
    assert threading.Lock is orig_lock
    assert threading.RLock is orig_rlock
