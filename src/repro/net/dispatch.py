"""Transport-agnostic request dispatch for the serving layer.

Both network front-ends — the thread-per-connection
:class:`~repro.net.server.CDStoreTCPServer` and the asyncio
:class:`~repro.net.async_server.AsyncCDStoreTCPServer` — answer the same
frames with the same auth, tenancy, rate-limit and streaming rules.  That
shared core lives here: a :class:`FrameDispatcher` turns one decoded
request frame into reply ``(frame_type, payload)`` tuples, leaving the
*framing* (v1 vs request-id-tagged v2 headers) and the I/O model to the
front-end that owns the socket.

Version negotiation also happens here because it is a protocol rule, not
a transport detail: :data:`~repro.net.wire.T_PING` carries the client's
highest version, the dispatcher records ``negotiate_version(...)`` on the
:class:`ConnState`, and the front-end calls
:meth:`ConnState.apply_negotiation` *after* the PONG is on the wire so
both sides switch framing on the same frame boundary.

``fetch_shares`` replies are **streamed**: the dispatcher walks
:meth:`~repro.server.server.CDStoreServer.iter_share_batches` and emits
one bounded :data:`~repro.net.wire.R_SHARE_BATCH` tuple per batch, with
each share priced at payload + :data:`~repro.net.wire.SHARE_WIRE_OVERHEAD`
against ``frame_budget`` — neither a reply frame nor the server-side
working set ever exceeds the budget, no matter how many containers the
request spans (backpressure on a slow client propagates straight into the
generator, which holds at most one batch).

Multi-tenancy: when constructed with a :class:`~repro.tenants.
TenantRegistry`, every connection must complete the challenge-response
handshake (:data:`~repro.net.wire.T_AUTH` →
:data:`~repro.net.wire.R_AUTH_CHALLENGE` →
:data:`~repro.net.wire.T_AUTH_PROOF` → :data:`~repro.net.wire.R_AUTH_OK`)
before any request other than a ping is answered.  After the handshake
every ``user_id``-bearing frame is pinned to the authenticated tenant,
maintenance frames are reserved to the ``admin`` role, share fetches are
owner-scoped server-side, and a per-tenant token bucket throttles request
rates.  Without a registry the dispatcher runs open.
"""

from __future__ import annotations

import hmac
import os
import time
from threading import Lock

from repro.analysis.annotations import guarded_by
from repro.errors import AuthError, ProtocolError, QuotaExceededError
from repro.net import wire
from repro.obs.registry import REGISTRY
from repro.obs.trace import ZERO_TRACE_ID, SpanRecorder, Tracer
from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES
from repro.tenants import ROLE_ADMIN, TenantRegistry, TokenBucket, auth_proof

__all__ = ["ADMIN_FRAMES", "ConnState", "FrameDispatcher"]

#: Maintenance/observability frames reserved to the ``admin`` role when a
#: tenant registry is active: they either touch other tenants' data
#: (scrub, GC, repair) or aggregate across tenants (stats, backup list,
#: the T_OBS_STATS metrics/span snapshot).
ADMIN_FRAMES = frozenset(
    {
        wire.T_SCRUB,
        wire.T_COLLECT_GARBAGE,
        wire.T_REPLACE_SHARE,
        wire.T_REBUILD_RECIPE,
        wire.T_LIST_BACKUPS,
        wire.T_STATS,
        wire.T_STORED_BYTES,
        wire.T_OBS_STATS,
    }
)

#: Wall-clock cost of answering one request frame, by frame short name.
#: Observed around the *full* reply generation — for streamed fetches
#: that includes every batch, so slow-consumer backpressure shows up
#: here, which is exactly what "why was this restore slow?" needs.
_DISPATCH_SECONDS = REGISTRY.histogram(
    "net_dispatch_seconds",
    "Latency of answering one request frame, labeled by frame type",
)

#: Requests rejected by a tenant's token bucket (per-tenant label) — the
#: "rate-limit hits" column of ``repro tenant-stats``.
_RATE_LIMITED = REGISTRY.counter(
    "dispatch_rate_limited_total",
    "Requests rejected by the per-tenant request-rate token bucket",
)


class ConnState:
    """Per-connection protocol state (auth progress + negotiated version).

    Owned by whichever execution context serves the connection serially
    for control frames (a handler thread, or the event loop); API-frame
    workers only *read* the auth fields after the handshake settled.
    """

    __slots__ = (
        "tenant", "role", "pending", "version", "trace",
        "_negotiated", "_trace_pending",
    )

    def __init__(self) -> None:
        self.tenant: str | None = None
        self.role: str | None = None
        #: In-flight handshake: ``(tenant_id, client_nonce, server_nonce)``.
        self.pending: tuple[str, bytes, bytes] | None = None
        #: Framing currently in force.  Every connection starts v1; the
        #: PING/PONG negotiation may upgrade it (never downgrade).
        self.version: int = 1
        #: Trace extension in force: every non-control request frame
        #: carries a :data:`~repro.net.wire.TRACE_CONTEXT_SIZE`-byte
        #: trailer.  Negotiated via :data:`~repro.net.wire.FLAG_TRACE`
        #: on the same PONG boundary as the framing upgrade.
        self.trace: bool = False
        self._negotiated: int | None = None
        self._trace_pending: bool = False

    def apply_negotiation(self) -> None:
        """Switch framing to the negotiated version (post-PONG, once).

        Called by the front-end after the PONG frame is written out: the
        reply to the PING itself is always framed in the version the PING
        arrived under, and only *subsequent* frames use the upgrade.
        A later PING on an already-upgraded connection cannot downgrade
        it — that would desynchronise frames already in flight.  The
        trace extension switches on at the same boundary (and, once on,
        never off — same no-downgrade rule).
        """
        if self._negotiated is not None:
            self.version = max(self.version, self._negotiated)
            self._negotiated = None
            if self._trace_pending:
                self.trace = True
                self._trace_pending = False


class FrameDispatcher:
    """Answer decoded request frames for one backing CDStore server.

    Parameters
    ----------
    server:
        The :class:`~repro.server.server.CDStoreServer` (or any object
        with its surface) answering the requests.
    frame_budget:
        Cap on one ``fetch_shares`` reply frame, covering share payloads
        plus their per-share wire overhead.  Also the bound on the
        server-side working set of a streamed fetch.
    tenants:
        Optional :class:`~repro.tenants.TenantRegistry`; ``None`` serves
        everyone (single-operator mode).
    gateway:
        Optional :class:`~repro.gateway.service.GatewayService`.  When
        set, the gateway frames (:data:`~repro.net.wire.GATEWAY_FRAMES`)
        are answered from it — under exactly the same auth/tenancy gate
        as API frames, so a tenant cannot read another tenant's backups
        through the cache.  A pure gateway front-end passes
        ``server=None`` and answers *only* ping/auth/gateway frames;
        API frames are then a protocol error.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the per-tenant token
    #: buckets are shared by every connection a tenant holds (one budget
    #: per tenant, not per socket) and live under ``_bucket_lock``.
    GUARDED_BY = guarded_by(_buckets="_bucket_lock")

    def __init__(
        self,
        server: CDStoreServer | None,
        frame_budget: int = FETCH_BATCH_BYTES,
        tenants: TenantRegistry | None = None,
        gateway=None,
        trace: bool = True,
        span_ring: int = 256,
        slow_threshold: float | None = 1.0,
    ) -> None:
        if frame_budget < 1:
            raise ValueError(f"frame_budget must be >= 1, got {frame_budget}")
        if server is None and gateway is None:
            raise ValueError("a dispatcher needs a server, a gateway, or both")
        self.server = server
        self.frame_budget = frame_budget
        self.tenants = tenants
        self.gateway = gateway
        #: Whether this front-end accepts the FLAG_TRACE capability
        #: (``ObsSpec.trace``); the span ring and slow-request threshold
        #: come from the same spec.
        self.trace_enabled = trace
        self.component = "gateway" if server is None else "server"
        self.tracer = Tracer(
            self.component,
            recorder=SpanRecorder(span_ring),
            slow_threshold=slow_threshold,
        )
        self._bucket_lock = Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def spans(self) -> SpanRecorder:
        """This front-end's ring of finished server-side spans."""
        return self.tracer.recorder

    # ------------------------------------------------------------------
    # authentication & tenant enforcement
    # ------------------------------------------------------------------
    def _handle_auth(self, state: ConnState, payload: bytes):
        """T_AUTH: remember the claim, answer with a fresh challenge.

        The server nonce is minted per attempt, so a recorded proof from
        an earlier connection verifies against nothing — replay defence
        lives here, not in any nonce bookkeeping.
        """
        tenant_id, client_nonce = wire.decode_auth(payload)
        server_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        state.pending = (tenant_id, client_nonce, server_nonce)
        yield wire.R_AUTH_CHALLENGE, wire.encode_auth_challenge(server_nonce)

    def _handle_auth_proof(self, state: ConnState, payload: bytes):
        """T_AUTH_PROOF: verify the HMAC against the pending challenge."""
        proof = wire.decode_auth_proof(payload)
        # One challenge, one attempt: clear the pending state before
        # verifying so a failed proof cannot be retried against the same
        # server nonce (the client must restart the handshake).
        pending, state.pending = state.pending, None
        if self.tenants is None or pending is None:
            raise AuthError("authentication failed")
        tenant_id, client_nonce, server_nonce = pending
        record = self.tenants.get(tenant_id)
        # Unknown tenants still cost one HMAC so the error is not a
        # timing oracle for tenant-id existence; the message is the same
        # for every failure mode for the same reason.
        secret = record.secret if record is not None else b"\x00" * 32
        expected = auth_proof(secret, tenant_id, client_nonce, server_nonce)
        if record is None or not hmac.compare_digest(proof, expected):
            raise AuthError("authentication failed")
        state.tenant = tenant_id
        state.role = record.role
        yield wire.R_AUTH_OK, wire.encode_auth_ok(record.role)

    def _authorize(
        self, state: ConnState, frame_type: int, user_id: str | None = None
    ) -> None:
        """Gate one request frame against the connection's auth state.

        No-op without a registry.  Otherwise: the connection must have
        completed the handshake; the request rate is charged to the
        tenant's shared token bucket; admins may do anything, while
        tenants are barred from :data:`ADMIN_FRAMES` and from naming any
        ``user_id`` other than their own.
        """
        if self.tenants is None:
            return
        if state.tenant is None:
            raise AuthError("authentication required")
        self._check_rate(state.tenant)
        if state.role == ROLE_ADMIN:
            return
        if frame_type in ADMIN_FRAMES:
            raise AuthError("administrator role required")
        if user_id is not None and user_id != state.tenant:
            raise AuthError(
                f"user id does not match authenticated tenant {state.tenant!r}"
            )

    def _check_rate(self, tenant_id: str) -> None:
        """Charge one request to the tenant's token bucket."""
        record = self.tenants.get(tenant_id) if self.tenants is not None else None
        rate = record.quota.max_requests_per_sec if record is not None else None
        if rate is None:
            return
        with self._bucket_lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is None:
                bucket = self._buckets[tenant_id] = TokenBucket(rate)
            allowed = bucket.allow(time.monotonic())
        if not allowed:
            _RATE_LIMITED.inc(tenant=tenant_id)
            raise QuotaExceededError(
                f"request rate limit exceeded for tenant {tenant_id!r}"
            )

    def _fetch_owner(self, state: ConnState) -> str | None:
        """Owner scope for share fetches: tenants see only their shares."""
        if self.tenants is None or state.role == ROLE_ADMIN:
            return None
        return state.tenant

    # ------------------------------------------------------------------
    # observability snapshot (T_OBS_STATS)
    # ------------------------------------------------------------------
    def obs_snapshot(self) -> dict:
        """The versioned snapshot an ``R_OBS_STATS`` reply carries.

        The process-wide metrics registry plus this front-end's own span
        ring and identity — two co-located front-ends (a gateway and a
        replica in one test process) share metrics but answer with their
        own spans.
        """
        snapshot = REGISTRY.snapshot()
        snapshot["component"] = self.component
        snapshot["server_id"] = (
            self.server.server_id
            if self.server is not None
            else wire.GATEWAY_SERVER_ID
        )
        snapshot["spans"] = self.tracer.snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, state: ConnState, frame_type: int, payload: bytes):
        """Yield reply ``(frame_type, payload)`` tuple(s) for one request.

        A generator so the streaming ``fetch_shares`` reply materialises
        one bounded frame at a time; every other request yields exactly
        one tuple.  The caller frames each tuple for the connection's
        negotiated version (and, on v2, echoes the request id).

        Observability wrapper: on trace-negotiated connections the
        :data:`~repro.net.wire.TRACE_CONTEXT_SIZE`-byte trailer is
        stripped *here*, before any payload codec runs, and activated as
        the handler's thread-local context — a gateway handler calling
        replica proxies in the same thread forwards the trace onward
        with no per-call plumbing.  Every frame's wall-clock cost lands
        in the ``net_dispatch_seconds`` histogram.
        """
        trace_id, parent_id = ZERO_TRACE_ID, 0
        if state.trace and frame_type not in wire.CONTROL_FRAMES:
            trace_id, parent_id, payload = wire.split_trace_context(payload)
        name = wire.frame_name(frame_type)
        clock = time.perf_counter()
        try:
            with self.tracer.span(
                f"frame:{name}", trace_id=trace_id, parent_id=parent_id
            ):
                yield from self._dispatch(state, frame_type, payload)
        finally:
            _DISPATCH_SECONDS.observe(time.perf_counter() - clock, frame=name)

    def _dispatch(self, state: ConnState, frame_type: int, payload: bytes):
        server = self.server
        if frame_type == wire.T_PING:
            # Liveness stays unauthenticated: failover probes must work
            # before (and without) credentials.  The PONG answers with the
            # negotiated version; the framing upgrade is applied by the
            # front-end once the PONG is out (ConnState.apply_negotiation).
            advertised, ping_flags = wire.decode_ping(payload)
            negotiated = wire.negotiate_version(advertised)
            state._negotiated = negotiated
            accepted = 0
            if (
                self.trace_enabled
                and negotiated >= 2
                and ping_flags & wire.FLAG_TRACE
            ):
                accepted |= wire.FLAG_TRACE
            state._trace_pending = bool(accepted & wire.FLAG_TRACE)
            server_id = (
                server.server_id if server is not None else wire.GATEWAY_SERVER_ID
            )
            yield wire.R_PONG, wire.encode_pong(server_id, negotiated, accepted)
        elif frame_type == wire.T_AUTH:
            yield from self._handle_auth(state, payload)
        elif frame_type == wire.T_AUTH_PROOF:
            yield from self._handle_auth_proof(state, payload)
        elif frame_type == wire.T_GW_RESOLVE:
            user_id, lookup_key = wire.decode_gw_resolve(payload)
            self._authorize(state, frame_type, user_id)
            if self.gateway is None:
                raise ProtocolError("this front-end serves no read gateway")
            file_size, secret_sizes, windows = self.gateway.resolve_backup(
                user_id, lookup_key
            )
            yield (
                wire.R_GW_BACKUP,
                wire.encode_gw_backup(file_size, secret_sizes, windows),
            )
        elif frame_type == wire.T_GW_WINDOW:
            user_id, lookup_key, window_index = wire.decode_gw_window(payload)
            self._authorize(state, frame_type, user_id)
            if self.gateway is None:
                raise ProtocolError("this front-end serves no read gateway")
            shard_count = 0
            for server_id, shares in self.gateway.iter_window_shards(
                user_id, lookup_key, window_index
            ):
                shard_count += 1
                yield wire.R_GW_SHARD, wire.encode_gw_shard(server_id, shares)
            yield wire.R_GW_WINDOW_END, wire.encode_gw_window_end(shard_count)
        elif frame_type == wire.T_OBS_STATS:
            # Served by every front-end (server or gateway): the metrics
            # registry is process-wide, the span ring is this front-end's.
            _expect_empty(payload)
            self._authorize(state, frame_type)
            yield wire.R_OBS_STATS, wire.encode_obs_stats(self.obs_snapshot())
        elif server is None:
            # A pure gateway front-end: API frames have no backing server.
            raise ProtocolError(
                f"gateway front-end cannot serve frame 0x{frame_type:02x}"
            )
        elif frame_type == wire.T_QUERY_DUPLICATES:
            user_id, fingerprints = wire.decode_query_duplicates(payload)
            self._authorize(state, frame_type, user_id)
            known = server.query_duplicates(user_id, fingerprints)
            yield wire.R_BOOLS, wire.encode_bools(known)
        elif frame_type == wire.T_UPLOAD_SHARES:
            user_id, uploads = wire.decode_upload_shares(payload)
            self._authorize(state, frame_type, user_id)
            server.upload_shares(user_id, uploads)
            yield wire.R_OK, b""
        elif frame_type == wire.T_FINALIZE_FILE:
            user_id, manifest, metas = wire.decode_finalize_file(payload)
            self._authorize(state, frame_type, user_id)
            server.finalize_file(user_id, manifest, metas)
            yield wire.R_OK, b""
        elif frame_type == wire.T_GET_FILE_ENTRY:
            user_id, lookup_key = wire.decode_user_key(payload)
            self._authorize(state, frame_type, user_id)
            entry = server.get_file_entry(user_id, lookup_key)
            yield wire.R_FILE_ENTRY, wire.encode_file_entry(entry)
        elif frame_type == wire.T_GET_RECIPE:
            user_id, lookup_key, bypass = wire.decode_get_recipe(payload)
            self._authorize(state, frame_type, user_id)
            recipe = server.get_recipe(user_id, lookup_key, bypass_cache=bypass)
            yield wire.R_RECIPE, wire.encode_recipe(recipe)
        elif frame_type == wire.T_LIST_FILES:
            user_id = wire.decode_user(payload)
            self._authorize(state, frame_type, user_id)
            listing = server.list_files(user_id)
            yield wire.R_FILE_LIST, wire.encode_file_list(listing)
        elif frame_type == wire.T_FETCH_SHARES:
            fingerprints = wire.decode_fetch_shares(payload)
            self._authorize(state, frame_type)
            total = 0
            # Price each share at its full wire cost and leave room for the
            # largest frame header + count word, so a maximally-packed batch
            # still serialises to a frame of at most frame_budget bytes in
            # either framing.
            batch_budget = max(
                1, self.frame_budget - wire.MUX_FRAME_HEADER.size - 4
            )
            for batch in server.iter_share_batches(
                fingerprints,
                budget_bytes=batch_budget,
                cost=lambda fp, data: wire.SHARE_WIRE_OVERHEAD + len(data),
                owner=self._fetch_owner(state),
            ):
                total += len(batch)
                yield wire.R_SHARE_BATCH, wire.encode_share_batch(batch)
            yield wire.R_SHARES_END, wire.encode_shares_end(total)
        elif frame_type == wire.T_DELETE_FILE:
            user_id, lookup_key = wire.decode_user_key(payload)
            self._authorize(state, frame_type, user_id)
            orphaned = server.delete_file(user_id, lookup_key)
            yield wire.R_INT, wire.encode_int(orphaned)
        elif frame_type == wire.T_COLLECT_GARBAGE:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            freed = server.collect_garbage()
            yield wire.R_INT, wire.encode_int(freed)
        elif frame_type == wire.T_SCRUB:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            corrupt = server.scrub()
            yield wire.R_FP_LIST, wire.encode_fp_list(corrupt)
        elif frame_type == wire.T_FLUSH:
            _expect_empty(payload)
            # Any authenticated tenant may flush: it only makes their own
            # (and everyone's) buffered writes durable, revealing nothing.
            self._authorize(state, frame_type)
            server.flush()
            yield wire.R_OK, b""
        elif frame_type == wire.T_STATS:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            yield wire.R_STATS, wire.encode_stats(server.stats)
        elif frame_type == wire.T_STORED_BYTES:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            yield wire.R_INT, wire.encode_int(server.stored_bytes)
        elif frame_type == wire.T_REPLACE_SHARE:
            server_fp, data = wire.decode_replace_share(payload)
            self._authorize(state, frame_type)
            server.replace_share(server_fp, data)
            yield wire.R_OK, b""
        elif frame_type == wire.T_REBUILD_RECIPE:
            user_id, lookup_key, entries = wire.decode_rebuild_recipe(payload)
            self._authorize(state, frame_type, user_id)
            server.rebuild_recipe(user_id, lookup_key, entries)
            yield wire.R_OK, b""
        elif frame_type == wire.T_LIST_BACKUPS:
            _expect_empty(payload)
            self._authorize(state, frame_type)
            backups = server.list_backups()
            yield wire.R_BACKUP_LIST, wire.encode_backup_list(backups)
        else:
            raise ProtocolError(f"unknown request frame type 0x{frame_type:02x}")


def _expect_empty(payload: bytes) -> None:
    if payload:
        raise ProtocolError(f"{len(payload)} unexpected payload bytes")
