"""Backup series / retention policies and fragmentation analysis."""

import pytest

from repro.analysis import analyze_fragmentation
from repro.chunking import FixedChunker
from repro.crypto.drbg import DRBG
from repro.errors import NotFoundError, ParameterError
from repro.system.cdstore import CDStoreSystem
from repro.system.retention import BackupSeries, RetentionPolicy


@pytest.fixture
def client():
    system = CDStoreSystem(n=4, k=3, salt=b"org")
    return system.client("alice", chunker=FixedChunker(4096))


class TestRetentionPolicy:
    def test_keeps_last_n(self):
        policy = RetentionPolicy(keep_last=2)
        assert policy.expired(["w1", "w2", "w3", "w4"]) == ["w1", "w2"]
        assert policy.expired(["w1", "w2"]) == []

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetentionPolicy(keep_last=0)


class TestBackupSeries:
    def test_backup_restore_by_label(self, client):
        series = BackupSeries(client, "homedir")
        v1 = DRBG("v1").random_bytes(20_000)
        v2 = DRBG("v2").random_bytes(20_000)
        series.backup("week01", v1)
        series.backup("week02", v2)
        assert series.restore("week01") == v1
        assert series.restore() == v2  # latest
        assert series.labels() == ["week01", "week02"]

    def test_duplicate_label_rejected(self, client):
        series = BackupSeries(client, "s")
        series.backup("w1", b"data" * 100)
        with pytest.raises(ParameterError):
            series.backup("w1", b"data" * 100)

    def test_invalid_names(self, client):
        with pytest.raises(ParameterError):
            BackupSeries(client, "a/b")
        series = BackupSeries(client, "ok")
        with pytest.raises(ParameterError):
            series.backup("bad/label", b"x")

    def test_restore_missing(self, client):
        series = BackupSeries(client, "empty")
        with pytest.raises(NotFoundError):
            series.restore()
        series.backup("w1", b"x" * 100)
        with pytest.raises(NotFoundError):
            series.restore("w9")

    def test_labels_recovered_from_server_metadata(self, client):
        series = BackupSeries(client, "persist")
        series.backup("w1", b"one" * 100)
        series.backup("w2", b"two" * 100)
        # A fresh series object (new client session) sees stored versions.
        fresh = BackupSeries(client, "persist")
        assert fresh.labels() == ["w1", "w2"]
        assert fresh.restore("w1") == b"one" * 100

    def test_retention_expires_and_reclaims(self, client):
        series = BackupSeries(client, "weekly")
        base = DRBG("ret").random_bytes(40_000)
        # Four versions sharing most chunks plus a unique tail each.
        for week in range(4):
            data = base + DRBG(f"tail{week}").random_bytes(8_000)
            series.backup(f"w{week}", data)
        client.flush()
        freed = series.apply_retention(RetentionPolicy(keep_last=2))
        assert series.labels() == ["w2", "w3"]
        # Only the expired versions' unique tails are reclaimable; the
        # shared base stays (still referenced by w2/w3).
        assert freed > 0
        assert series.restore("w3").startswith(base)
        with pytest.raises(NotFoundError):
            series.restore("w0")

    def test_retention_never_frees_shared_chunks(self, client):
        series = BackupSeries(client, "shared")
        data = DRBG("stable").random_bytes(30_000)
        for week in range(3):
            series.backup(f"w{week}", data)  # identical every week
        client.flush()
        series.apply_retention(RetentionPolicy(keep_last=1))
        assert series.restore() == data


class TestFragmentation:
    def test_fresh_backup_is_sequential(self):
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/fresh", DRBG("frag1").random_bytes(100_000))
        client.flush()
        report = analyze_fragmentation(
            system.servers[0], "alice", client._lookup_key("/fresh")
        )
        assert report.shares_total == 25
        assert report.fragmentation_score == 0.0
        assert report.containers_accessed >= 1

    def test_deduplicated_backup_fragments(self):
        """Interleaving chunks of two older backups yields a restore that
        hops between their containers — the [38] effect."""
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(4096))
        a = DRBG("A").random_bytes(40_000)
        b = DRBG("B").random_bytes(40_000)
        client.upload("/a", a)
        client.flush()  # seal container(s) for /a
        client.upload("/b", b)
        client.flush()
        # The new backup alternates 4 KB chunks of /a and /b.
        mixed = b"".join(
            a[i : i + 4096] + b[i : i + 4096] for i in range(0, 40_000, 4096)
        )
        client.upload("/mixed", mixed)
        client.flush()
        report = analyze_fragmentation(
            system.servers[0], "alice", client._lookup_key("/mixed")
        )
        assert report.fragmentation_score > 0.5
        fresh = analyze_fragmentation(
            system.servers[0], "alice", client._lookup_key("/a")
        )
        assert report.containers_accessed > fresh.containers_accessed

    def test_report_properties(self):
        from repro.analysis.fragmentation import FragmentationReport

        r = FragmentationReport("u", 10, 2, 1, 1000)
        assert r.shares_per_container == 5.0
        assert r.fragmentation_score == 0.0
        empty = FragmentationReport("u", 0, 0, 0, 0)
        assert empty.fragmentation_score == 0.0
        assert empty.shares_per_container == 0.0
