"""Chunk-trace value objects shared by the workload generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError

__all__ = ["ChunkRecord", "BackupSnapshot", "Workload", "materialize"]


@dataclass(frozen=True)
class ChunkRecord:
    """One chunk of a backup: its fingerprint and size.

    This mirrors the published FSL trace format ("48-bit chunk fingerprints
    and corresponding chunk sizes"); we carry full 32-byte fingerprints.
    """

    fingerprint: bytes
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"chunk size must be positive, got {self.size}")


@dataclass(frozen=True)
class BackupSnapshot:
    """One user's weekly backup as an ordered chunk trace."""

    user: str
    week: int
    chunks: tuple[ChunkRecord, ...]

    @property
    def logical_bytes(self) -> int:
        return sum(chunk.size for chunk in self.chunks)

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)


def materialize(record: ChunkRecord) -> bytes:
    """Reconstruct chunk content from its fingerprint, as §5.5 does.

    "We reconstruct a chunk by writing the fingerprint value repeatedly to
    a chunk with the specified size, so as to preserve content similarity."
    Identical records therefore produce identical bytes (deduplicable) and
    distinct records produce distinct bytes.
    """
    reps = -(-record.size // len(record.fingerprint))
    return (record.fingerprint * reps)[: record.size]


class Workload(abc.ABC):
    """A generator of weekly backup snapshots for a set of users."""

    users: list[str]
    weeks: int

    @abc.abstractmethod
    def snapshot(self, user: str, week: int) -> BackupSnapshot:
        """The given user's backup for the given week (1-based)."""

    def week_snapshots(self, week: int) -> Iterator[BackupSnapshot]:
        """All users' snapshots for one week."""
        for user in self.users:
            yield self.snapshot(user, week)

    def all_snapshots(self) -> Iterator[BackupSnapshot]:
        """Every snapshot, week-major (the order backups are taken)."""
        for week in range(1, self.weeks + 1):
            yield from self.week_snapshots(week)
