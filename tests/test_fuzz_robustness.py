"""Robustness fuzzing: corrupt/hostile inputs raise clean library errors.

Every deserialisation path must fail with a :class:`ReproError` subclass
(or hand back wrong-but-typed data caught by integrity layers above) —
never an unhandled ``struct.error``/``IndexError``/``UnicodeDecodeError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError

pytestmark = pytest.mark.slow  # hypothesis-driven fuzz sweep

# Acceptable outcomes for fuzzed deserialisation: a clean library error, or
# a successfully-parsed (garbage) value — never a raw Python crash.
_CLEAN = (ReproError,)


def _fuzz(func, blob):
    try:
        func(blob)
    except _CLEAN:
        pass
    except (KeyError, ValueError) as exc:
        # NotFoundError/ParameterError subclass these; anything else leaks.
        assert isinstance(exc, ReproError), f"leaked {type(exc).__name__}: {exc}"


class TestDeserialisationFuzz:
    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_container_deserialize(self, blob):
        from repro.storage.container import Container

        _fuzz(Container.deserialize, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_container_ref_unpack(self, blob):
        from repro.storage.container import ContainerRef

        _fuzz(ContainerRef.unpack, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_share_meta_unpack(self, blob):
        from repro.server.messages import ShareMeta

        _fuzz(ShareMeta.unpack, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_file_manifest_unpack(self, blob):
        from repro.server.messages import FileManifest

        _fuzz(FileManifest.unpack, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_share_entry_unpack(self, blob):
        from repro.server.index import ShareEntry

        _fuzz(ShareEntry.unpack, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_file_entry_unpack(self, blob):
        from repro.server.index import FileEntry

        _fuzz(FileEntry.unpack, blob)

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_bloom_from_bytes(self, blob):
        from repro.lsm.bloom import BloomFilter

        _fuzz(BloomFilter.from_bytes, blob)

    @settings(max_examples=60)
    @given(st.binary(max_size=300))
    def test_archive_parse(self, blob):
        import tempfile

        from repro.archive import unpack_tree

        with tempfile.TemporaryDirectory() as dest:
            _fuzz(lambda b: unpack_tree(b, dest), blob)

    @settings(max_examples=60)
    @given(st.binary(max_size=300))
    def test_lzss_decompress(self, blob):
        from repro.compress.lzss import lzss_decompress

        _fuzz(lzss_decompress, blob)

    @settings(max_examples=60)
    @given(st.binary(max_size=300))
    def test_huffman_decode(self, blob):
        from repro.compress.huffman import huffman_decode

        _fuzz(huffman_decode, blob)

    @settings(max_examples=60)
    @given(st.binary(max_size=300))
    def test_composed_decompress(self, blob):
        from repro.compress.codec import decompress

        _fuzz(decompress, blob)


class TestMutationFuzz:
    """Valid structures with injected bit flips must be detected."""

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(0, 7))
    def test_caont_rs_share_mutations_never_return_wrong_data(self, pos, bit):
        from repro.core.caont_rs import CAONTRS
        from repro.errors import IntegrityError

        codec = CAONTRS(4, 3)
        secret = b"precious backup bytes" * 40
        shares = codec.split(secret)
        mutated = bytearray(shares.shares[0])
        mutated[pos % len(mutated)] ^= 1 << bit
        try:
            out = codec.recover(
                {0: bytes(mutated), 1: shares.shares[1], 2: shares.shares[2]},
                len(secret),
            )
        except IntegrityError:
            return  # detected, as designed
        # A mutation that flips padding bytes beyond the secret can decode
        # cleanly — but then the secret must be intact.
        assert out == secret

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_wal_mutations_never_yield_bad_records(self, pos):
        import tempfile
        from pathlib import Path

        from repro.lsm.wal import WriteAheadLog

        tmp = tempfile.mkdtemp()
        path = Path(tmp) / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_put(b"key-one", b"value-one")
            wal.append_put(b"key-two", b"value-two")
        blob = bytearray(path.read_bytes())
        blob[pos % len(blob)] ^= 0xFF
        path.write_bytes(bytes(blob))
        # Replay must yield only records whose CRC verifies — a prefix of
        # the original sequence.
        records = list(WriteAheadLog(path).replay())
        expected = [(1, b"key-one", b"value-one"), (1, b"key-two", b"value-two")]
        assert records == expected[: len(records)]
