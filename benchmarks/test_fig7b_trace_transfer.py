"""Figure 7(b) — trace-driven single-client transfer speeds (FSL trace).

Paper (MB/s): LAN 92.3 (first backup) / 145.1 (subsequent) / 89.6 (down);
cloud 6.9 / 56.2 / 9.5.  Shape claims: the first backup uploads faster
than unique data (it already contains intra-user duplicates); subsequent
backups approach the duplicate-data speed; downloads run below baseline
because deduplication fragments chunks across containers.

The replay also accumulates the serial encode-then-upload schedule next to
the pipelined one, so the table shows what the streaming transfer stage
saves across a whole backup campaign at one encode thread.
"""

from conftest import emit, emit_metrics

from repro.bench.reporting import format_table
from repro.bench.transfer import baseline_transfer_speeds, trace_transfer_speeds
from repro.cloud.testbed import cloud_testbed, lan_testbed
from repro.workloads import FSLWorkload


def test_fig7b(benchmark):
    # LAN: 7 weekly backups of 5 users; cloud: 2 weeks of 1 user (§5.5).
    def run():
        lan_wl = FSLWorkload(users=5, weeks=7, chunks_per_user=500)
        cloud_wl = FSLWorkload(users=1, weeks=2, chunks_per_user=500)
        return [
            trace_transfer_speeds(lan_testbed(), lan_wl, users=5, weeks=7),
            trace_transfer_speeds(cloud_testbed(), cloud_wl, users=1, weeks=2),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        [
            "testbed",
            "upload first",
            "upload subsqt",
            "download",
            "overlap s",
            "serial s",
        ],
        [
            [
                s.testbed,
                s.upload_first_mbps,
                s.upload_subsequent_mbps,
                s.download_mbps,
                s.upload_seconds_overlapped,
                s.upload_seconds_serial,
            ]
            for s in results
        ],
        title="Figure 7(b): trace-driven speeds (MB/s), FSL-like workload",
    )
    emit("fig7b", table)

    emit_metrics(
        {
            **{
                f"fig7b.{s.testbed}.{field}": getattr(s, field)
                for s in results
                for field in ("upload_first_mbps", "upload_subsequent_mbps")
            },
            **{
                f"fig7b.{s.testbed}.pipeline_speedup": (
                    s.upload_seconds_serial / s.upload_seconds_overlapped
                )
                for s in results
            },
        }
    )

    for s in results:
        baseline = baseline_transfer_speeds(
            lan_testbed() if s.testbed == "lan" else cloud_testbed()
        )
        # First backup beats unique-data uploads (intra-user dups inside).
        assert s.upload_first_mbps > baseline.upload_unique_mbps
        # Subsequent backups approach the duplicate-data bound.
        assert s.upload_subsequent_mbps > 0.5 * baseline.upload_duplicate_mbps
        # Fragmentation keeps trace downloads below the baseline download.
        assert s.download_mbps < baseline.download_mbps
        # The pipelined schedule strictly beats serial encode+upload.
        assert s.upload_seconds_overlapped < s.upload_seconds_serial
