"""Shared fixtures + runtime hardening for the CDStore test suite.

Beyond the data fixtures, this conftest arms three safety nets for a
deeply threaded codebase:

* ``faulthandler.enable()`` — a hard hang or native crash dumps every
  thread's stack instead of dying silently;
* a recording ``threading.excepthook`` — an exception escaping a
  background thread fails the test that owned it (via the autouse
  fixture below) instead of surfacing as a hang or a silent pass.
  pytest's own ``threadexception`` plugin is disabled in pyproject so
  this hook is authoritative;
* the opt-in lock-order witness — ``REPRO_LOCK_WITNESS=1`` wraps every
  ``threading.Lock``/``RLock`` allocated after this module imports and
  fails the session if any two lock allocation sites are ever taken in
  both orders (see :mod:`repro.analysis.witness`).
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import pytest

from repro.chunking.fixed import FixedChunker
from repro.crypto.drbg import DRBG
from repro.system.cdstore import CDStoreSystem

faulthandler.enable()

_WITNESS = None
if os.environ.get("REPRO_LOCK_WITNESS") == "1":
    from repro.analysis.witness import install as _install_witness

    # Installed for the whole session (never uninstalled): locks created
    # by module-level imports after this point are witnessed too.
    _WITNESS, _ = _install_witness()


_background_errors: list[tuple[str, BaseException]] = []
_background_errors_lock = threading.Lock()
_original_excepthook = threading.excepthook


def _recording_excepthook(args: threading.ExceptHookArgs) -> None:
    thread_name = args.thread.name if args.thread is not None else "<unknown>"
    with _background_errors_lock:
        _background_errors.append((thread_name, args.exc_value))
    _original_excepthook(args)  # still print the traceback to stderr


threading.excepthook = _recording_excepthook


@pytest.fixture(autouse=True)
def fail_on_background_thread_exception():
    """Fail the owning test if any background thread raised during it."""
    with _background_errors_lock:
        _background_errors.clear()
    yield
    with _background_errors_lock:
        errors = list(_background_errors)
        _background_errors.clear()
    if errors:
        detail = "; ".join(f"[{name}] {exc!r}" for name, exc in errors)
        pytest.fail(
            f"{len(errors)} background thread exception(s) during this "
            f"test: {detail}"
        )


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if _WITNESS is None:
        return
    from repro.analysis.witness import LockOrderError

    try:
        _WITNESS.assert_no_cycles()
    except LockOrderError as exc:
        print(f"\nREPRO_LOCK_WITNESS: {exc}", file=sys.stderr)
        session.exitstatus = 1
    else:
        edges = sum(len(v) for v in _WITNESS.graph.edges.values())
        print(
            f"\nREPRO_LOCK_WITNESS: acquisition graph acyclic "
            f"({len(_WITNESS.graph.edges)} lock sites, {edges} edges)",
            file=sys.stderr,
        )


@pytest.fixture
def drbg() -> DRBG:
    """A deterministic RNG; each test gets the same stream."""
    return DRBG("test-fixture")


@pytest.fixture
def small_system() -> CDStoreSystem:
    """A (4, 3) in-memory CDStore deployment with fast fixed chunking."""
    return CDStoreSystem(n=4, k=3, salt=b"test-org")


@pytest.fixture
def fixed_chunker() -> FixedChunker:
    return FixedChunker(4096)


def make_data(size: int, seed: str = "data") -> bytes:
    """Deterministic pseudo-random payload for tests."""
    return DRBG(seed).random_bytes(size)
