"""The CDStore deployment façade.

Typical use::

    system = CDStoreSystem(n=4, k=3)
    alice = system.client("alice")
    alice.upload("/backup/home.tar", data)
    system.fail_cloud(0)                  # outage
    restored = alice.download("/backup/home.tar")   # k=3 survivors suffice
    system.recover_cloud(0)
    system.repair_cloud(0)                # rebuild lost shares (§3.1)
"""

from __future__ import annotations

from pathlib import Path

from repro.chunking.base import Chunker
from repro.chunking.registry import ChunkerSpec
from repro.cloud.network import Link, SimClock
from repro.cloud.provider import CloudProvider
from repro.client.client import CDStoreClient
from repro.config import ObsSpec, ReproConfig
from repro.crypto.hashing import fingerprint
from repro.dedup.stats import DedupStats
from repro.errors import InsufficientCloudsError, ParameterError
from repro.server.index import LSMIndex
from repro.server.messages import ShareMeta, ShareUpload
from repro.server.server import CDStoreServer
from repro.tenants import Credentials

__all__ = ["CDStoreSystem"]


class CDStoreSystem:
    """``n`` clouds + servers + clients of one organisation.

    Parameters
    ----------
    n, k:
        Dispersal parameters; ``n`` clouds are created unless ``clouds`` is
        supplied.
    salt:
        Organisation-wide convergent salt shared by every client, so data
        deduplicates across the organisation's users but not with
        outsiders.
    clouds:
        Optional pre-built providers (e.g. from a
        :class:`~repro.cloud.testbed.Testbed`).  Entries may also be
        ``"tcp://host:port"`` strings: that cloud is *remote* — a
        :class:`~repro.net.client.RemoteServerProxy` takes the server
        slot and drives a :class:`~repro.net.server.CDStoreTCPServer`
        over the wire, while local and remote clouds mix freely in one
        deployment.
    index_root:
        If given, servers use durable LSM indices under this directory;
        otherwise in-memory indices.
    chunker:
        Default chunker for clients this system creates: a live
        :class:`~repro.chunking.base.Chunker`, a
        :class:`~repro.chunking.registry.ChunkerSpec` or a spec string
        like ``"gear"`` (None = the paper's Rabin default).  Clients only
        deduplicate against each other when they chunk identically, so an
        organisation normally fixes this system-wide; individual
        :meth:`client` calls may still override it.
    threads:
        Default comm/encode thread count for clients this system creates
        (§4.6); individual :meth:`client` calls may override it.
    workers:
        Default encode-pool flavour for clients, ``"thread"`` or
        ``"process"`` (see :mod:`repro.client.comm` for when each wins);
        individual :meth:`client` calls may override it.
    pipeline_depth:
        Default streaming transfer-stage depth for clients (§4.6
        pipelining): maximum encode slabs / restore windows in flight
        between stages.  ``1`` keeps the serial-phase behaviour; values
        above 1 overlap wire time with encoding/decoding even at
        ``threads=1``, and ``"auto"`` derives the depth from measured
        encode/wire rates at the first upload.  Individual :meth:`client`
        calls may override it.
    mux:
        Multiplex remote-cloud connections (wire v2): one socket per
        cloud carries concurrent requests and pipelined upload acks.
        Ignored for local clouds; proxies degrade to serial framing
        against v1 servers.  ``False`` pins proxies to the v1 protocol.
    clock:
        Optional simulated clock shared by all clients.  Each operation
        adds its own span (per-cloud makespan when the client is
        parallel); overlapping operations from different clients
        accumulate additively, i.e. total transfer work.
    credentials:
        Optional :class:`~repro.tenants.Credentials` handed to every
        remote proxy this system builds, so multi-tenant ``repro serve``
        deployments authenticate transparently.  Never persisted in the
        deployment config.
    gateway:
        Optional read gateway: a :class:`~repro.config.GatewaySpec` or a
        ``tcp://host:port`` string naming a running ``repro gateway``.
        The system builds **one** shared proxy to it, hands it to every
        client it creates (restores go through the gateway with
        automatic direct-quorum fallback), and closes it in
        :meth:`close` — clients share the proxy and never close it.
    """

    def __init__(
        self,
        n: int = 4,
        k: int = 3,
        salt: bytes = b"",
        clouds: list[CloudProvider] | None = None,
        index_root: str | Path | None = None,
        scheme: str = "caont-rs",
        key_server=None,
        chunker: Chunker | ChunkerSpec | str | None = None,
        threads: int = 1,
        workers: str = "thread",
        pipeline_depth: int | str = 1,
        clock: SimClock | None = None,
        credentials: Credentials | None = None,
        mux: bool = True,
        gateway=None,
        obs: ObsSpec | None = None,
    ) -> None:
        if clouds is not None and len(clouds) != n:
            raise ParameterError(f"got {len(clouds)} clouds for n={n}")
        if not 0 < k <= n:
            raise ParameterError(f"require 0 < k <= n, got (n={n}, k={k})")
        self.n = n
        self.k = k
        self.salt = salt
        self.scheme = scheme
        self.chunker = chunker
        self.threads = threads
        self.workers = workers
        self.pipeline_depth = pipeline_depth
        self.mux = bool(mux)
        #: Observability shape every client and proxy this system
        #: builds inherits (tracing on by default).
        self.obs = obs if obs is not None else ObsSpec()
        self.clock = clock
        #: Optional DupLESS-style key server (§3.2 remarks): when set,
        #: clients encode with server-aided CAONT-RS instead of plain
        #: hash keys, hardening small-message-space data against offline
        #: brute force at the cost of the key-management dependency.
        self.key_server = key_server
        specs = clouds or [
            CloudProvider(
                name=f"cloud-{i}", uplink=Link(100.0), downlink=Link(100.0)
            )
            for i in range(n)
        ]
        self.credentials = credentials
        self._closed = False
        self.clouds = []
        self.servers: list = []
        #: Cloud indices served over the wire (``tcp://`` specs).
        self.remote_indices: set[int] = set()
        for i, spec in enumerate(specs):
            if isinstance(spec, str):
                from repro.net.client import RemoteServerProxy

                proxy = RemoteServerProxy(
                    spec,
                    server_id=i,
                    credentials=credentials,
                    mux=self.mux,
                    trace=self.obs.enabled and self.obs.trace,
                )
                self.remote_indices.add(i)
                self.clouds.append(proxy.cloud)
                self.servers.append(proxy)
                continue
            index = (
                LSMIndex(Path(index_root) / f"server-{i}")
                if index_root is not None
                else None
            )
            self.clouds.append(spec)
            self.servers.append(CDStoreServer(server_id=i, cloud=spec, index=index))
        #: The shared gateway proxy (None without a gateway).  Owned by
        #: the system: clients borrow it, ``close()`` closes it.
        self.gateway = None
        if gateway is not None:
            from repro.net import wire
            from repro.net.client import RemoteServerProxy

            endpoint = gateway if isinstance(gateway, str) else str(gateway.endpoint)
            self.gateway = RemoteServerProxy(
                endpoint,
                server_id=wire.GATEWAY_SERVER_ID,
                credentials=credentials,
                mux=self.mux,
                trace=self.obs.enabled and self.obs.trace,
            )
        self._clients: dict[str, CDStoreClient] = {}

    # ------------------------------------------------------------------
    # construction from a typed config
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: ReproConfig,
        root: str | Path | None = None,
        credentials: Credentials | None = None,
        clock: SimClock | None = None,
        key_server=None,
    ) -> "CDStoreSystem":
        """Build a system from a validated :class:`~repro.config.ReproConfig`.

        ``root`` is the deployment directory: local cloud specs get a
        :class:`~repro.storage.backend.LocalDirBackend` under
        ``root/cloud-<i>`` and servers get durable LSM indices under
        ``root/indices`` (omit it for fully in-memory systems — tests,
        simulations).  Remote specs become authenticated proxies when
        ``credentials`` is given.  This replaces the old pattern of
        re-deriving constructor kwargs from a loose config dict at every
        call site.
        """
        from repro.storage.backend import LocalDirBackend

        root = Path(root) if root is not None else None
        clouds: list = []
        for i, spec in enumerate(config.cloud_specs):
            if spec.is_remote:
                clouds.append(str(spec))
                continue
            backend = (
                LocalDirBackend(root / f"cloud-{i}") if root is not None else None
            )
            clouds.append(
                CloudProvider(
                    name=f"cloud-{i}",
                    uplink=Link(100.0),
                    downlink=Link(100.0),
                    backend=backend,
                )
            )
        return cls(
            n=config.n,
            k=config.k,
            salt=config.salt_bytes,
            clouds=clouds,
            index_root=root / "indices" if root is not None else None,
            scheme=config.scheme,
            key_server=key_server,
            chunker=config.chunker,
            threads=config.threads,
            workers=config.workers,
            pipeline_depth=config.pipeline_depth,
            clock=clock,
            credentials=credentials,
            mux=config.mux,
            gateway=config.gateway,
            obs=config.obs,
        )

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------
    def client(
        self,
        user_id: str,
        chunker: Chunker | ChunkerSpec | str | None = None,
        threads: int | None = None,
        workers: str | None = None,
        pipeline_depth: int | str | None = None,
    ) -> CDStoreClient:
        """Get (or create) the CDStore client for ``user_id``.

        ``chunker``, ``threads``, ``workers`` and ``pipeline_depth``
        default to the system-wide settings; pass explicit values to
        override for this client (first call wins — clients are cached
        per user).
        """
        if user_id not in self._clients:
            codec = None
            if self.key_server is not None:
                from repro.keyserver.client import KeyClient
                from repro.keyserver.codec import ServerAidedCAONTRS

                codec = ServerAidedCAONTRS(
                    self.n,
                    self.k,
                    key_client=KeyClient(user_id, self.key_server, salt=self.salt),
                )
            self._clients[user_id] = CDStoreClient(
                user_id=user_id,
                servers=self.servers,
                k=self.k,
                salt=self.salt,
                chunker=self.chunker if chunker is None else chunker,
                scheme=self.scheme,
                threads=self.threads if threads is None else threads,
                workers=self.workers if workers is None else workers,
                pipeline_depth=(
                    self.pipeline_depth if pipeline_depth is None else pipeline_depth
                ),
                codec=codec,
                clock=self.clock,
                gateway=self.gateway,
                trace=self.obs.enabled and self.obs.trace,
                span_ring=self.obs.span_ring_size,
                slow_threshold=self.obs.slow_request_seconds,
            )
        return self._clients[user_id]

    # ------------------------------------------------------------------
    # failure injection & repair (§3.1)
    # ------------------------------------------------------------------
    def _require_local(self, index: int, operation: str) -> None:
        if index in self.remote_indices:
            raise ParameterError(
                f"cannot {operation} remote cloud {index} "
                f"({self.clouds[index].name}): failure injection is driven "
                "at the serving process, not through the proxy"
            )

    def fail_cloud(self, index: int) -> None:
        """Take cloud ``index`` offline."""
        self._require_local(index, "fail")
        self.clouds[index].fail()

    def recover_cloud(self, index: int) -> None:
        """Bring cloud ``index`` back online (its data may be stale/lost)."""
        self._require_local(index, "recover")
        self.clouds[index].recover()

    def wipe_cloud(self, index: int) -> None:
        """Permanently destroy cloud ``index``'s data and its server state.

        Models vendor termination (§1): the backend is emptied and the
        co-locating server is replaced with a fresh one (its VM-local index
        is gone too).  Follow with :meth:`repair_cloud` to rebuild.
        """
        self._require_local(index, "wipe")
        self.clouds[index].wipe()
        self.servers[index] = CDStoreServer(
            server_id=index, cloud=self.clouds[index]
        )
        # Existing clients hold server references; refresh them.
        for client in self._clients.values():
            client.servers[index] = self.servers[index]

    def repair_cloud(self, index: int) -> int:
        """Rebuild cloud ``index``'s shares from the surviving clouds.

        CDStore "reconstructs original secrets and then rebuilds the lost
        shares as in Reed-Solomon codes" (§3.1).  Every user file is
        re-read from ``k`` healthy clouds, each secret decoded, share
        ``index`` regenerated and re-ingested at the repaired server.
        Returns the number of shares rebuilt.
        """
        target = self.servers[index]
        target.cloud.check_available()
        healthy = [
            server
            for server in self.servers
            if server.server_id != index and server.cloud.available
        ]
        if len(healthy) < self.k:
            raise InsufficientCloudsError(
                f"repair needs k={self.k} healthy clouds, found {len(healthy)}"
            )
        donors = healthy[: self.k]
        rebuilt = 0
        # Walk every (user, file) recorded on the first donor — through the
        # server surface, so a remote donor serves repairs over the wire.
        for user, lookup_key in donors[0].list_backups():
            client = self.client(user)
            # Donor reads go through the client's comm engine so recipe and
            # share fetches overlap across the k donor clouds (§4.6).
            recipes = {
                server.server_id: recipe
                for server, recipe in zip(
                    donors,
                    client.comm.map_servers(
                        lambda server, _user=user, _key=lookup_key: (
                            server.get_recipe(_user, _key)
                        ),
                        donors,
                    ),
                )
            }
            entry0 = donors[0].get_file_entry(user, lookup_key)
            shares_by_server = {
                server.server_id: shares
                for server, shares in zip(
                    donors,
                    client.comm.map_servers(
                        lambda server: server.fetch_shares(
                            [e.fingerprint for e in recipes[server.server_id]]
                        ),
                        donors,
                    ),
                )
            }
            metas: list[ShareMeta] = []
            for seq in range(entry0.secret_count):
                secret_size = recipes[donors[0].server_id][seq].secret_size
                shares = {
                    server.server_id: shares_by_server[server.server_id][
                        recipes[server.server_id][seq].fingerprint
                    ]
                    for server in donors
                }
                secret = client.dispersal.decode(shares, secret_size)
                new_shares = client.dispersal.encode(secret)
                lost = new_shares.shares[index]
                meta = ShareMeta(
                    fingerprint=fingerprint(lost, domain="client"),
                    share_size=len(lost),
                    secret_seq=seq,
                    secret_size=secret_size,
                )
                known = target.query_duplicates(user, [meta.fingerprint])[0]
                if not known:
                    target.upload_shares(
                        user, [ShareUpload(meta=meta, data=lost)]
                    )
                    rebuilt += 1
                metas.append(meta)
            manifest_entry = donors[0].get_file_entry(user, lookup_key)
            from repro.server.messages import FileManifest

            # The repaired server needs its own file entry + recipe; the
            # pathname share for cloud `index` is regenerated from donors'
            # shares via the client's path sharer.
            path_shares = {
                server.server_id: server.get_file_entry(user, lookup_key).path_share
                for server in donors
            }
            path = client._path_sharer.recover(
                path_shares, secret_size=self._path_len(path_shares)
            )
            new_path_shares = client._path_sharer.split(path)
            manifest = FileManifest(
                lookup_key=lookup_key,
                path_share=new_path_shares.shares[index],
                file_size=manifest_entry.file_size,
                secret_count=manifest_entry.secret_count,
            )
            target.finalize_file(user, manifest, metas)
        target.flush()
        return rebuilt

    @staticmethod
    def _path_len(path_shares: dict[int, bytes]) -> int:
        # Shamir shares are exactly as long as the secret.
        return len(next(iter(path_shares.values())))

    def scrub_and_repair(self, index: int) -> int:
        """Audit cloud ``index`` for silent corruption and heal it.

        Runs the server's scrub, then regenerates every corrupt share by
        decoding its secret from the healthy clouds and re-encoding —
        the same Reed-Solomon repair as :meth:`repair_cloud`, applied
        surgically.  Returns the number of shares healed.
        """
        target = self.servers[index]
        corrupt = set(target.scrub())
        donors = [
            server
            for server in self.servers
            if server.server_id != index and server.cloud.available
        ][: self.k]
        if len(donors) < self.k:
            raise InsufficientCloudsError(
                f"scrub repair needs k={self.k} healthy clouds"
            )
        from repro.crypto.hashing import fingerprint as _fingerprint
        from repro.errors import ReproError
        from repro.server.messages import RecipeEntry

        healed: set[bytes] = set()
        recipes_rebuilt = 0
        for user, lookup_key in target.list_backups():
            client = self.client(user)
            donor_recipes = {
                server.server_id: recipe
                for server, recipe in zip(
                    donors,
                    client.comm.map_servers(
                        lambda server, _user=user, _key=lookup_key: (
                            server.get_recipe(_user, _key)
                        ),
                        donors,
                    ),
                )
            }
            secret_count = len(donor_recipes[donors[0].server_id])

            def _regenerate(seq: int) -> tuple[bytes, int]:
                """Decode secret ``seq`` from donors; return (share, size)."""
                shares = {
                    server.server_id: server.fetch_shares(
                        [donor_recipes[server.server_id][seq].fingerprint]
                    )[donor_recipes[server.server_id][seq].fingerprint]
                    for server in donors
                }
                secret_size = donor_recipes[donors[0].server_id][seq].secret_size
                secret = client.dispersal.decode(shares, secret_size)
                return client.dispersal.encode(secret).shares[index], secret_size

            try:
                target_recipe = target.get_recipe(user, lookup_key, bypass_cache=True)
            except ReproError:
                # The recipe container itself is corrupt: rebuild the whole
                # recipe from donor data.
                entries = []
                for seq in range(secret_count):
                    share, secret_size = _regenerate(seq)
                    server_fp = _fingerprint(share, domain="server")
                    if server_fp in corrupt and server_fp not in healed:
                        target.replace_share(server_fp, share)
                        healed.add(server_fp)
                    entries.append(
                        RecipeEntry(fingerprint=server_fp, secret_size=secret_size)
                    )
                target.rebuild_recipe(user, lookup_key, entries)
                recipes_rebuilt += 1
                continue

            for seq, entry in enumerate(target_recipe):
                if entry.fingerprint in corrupt and entry.fingerprint not in healed:
                    share, _ = _regenerate(seq)
                    target.replace_share(entry.fingerprint, share)
                    healed.add(entry.fingerprint)
        target.flush()
        return len(healed) + recipes_rebuilt

    # ------------------------------------------------------------------
    # accounting (Figures 6 and 9)
    # ------------------------------------------------------------------
    def global_stats(self) -> DedupStats:
        """Fleet-wide deduplication stats.

        Logical/ transferred counters come from the clients; physical
        counters from the servers (inter-user dedup happens there).
        """
        stats = DedupStats()
        for client in self._clients.values():
            stats.logical_data += client.stats.logical_data
            stats.logical_shares += client.stats.logical_shares
            stats.transferred_shares += client.stats.transferred_shares
            stats.secrets_total += client.stats.secrets_total
            stats.shares_total += client.stats.shares_total
            stats.shares_transferred += client.stats.shares_transferred
        for server in self.servers:
            stats.physical_shares += server.stats.physical_shares
            stats.shares_stored += server.stats.shares_stored
        return stats

    def stored_bytes(self) -> int:
        """Total bytes stored across all cloud backends (incl. metadata)."""
        for server in self.servers:
            server.flush()
        return sum(cloud.stored_bytes for cloud in self.clouds)

    def flush(self) -> None:
        """Seal every server's open containers."""
        for server in self.servers:
            server.flush()

    def close(self) -> None:
        """Shut down client comm engines, server resources and proxies.

        Idempotent: the crash-only lifecycle rule is that anyone may
        call ``close()`` on the way down without coordinating over who
        already did.
        """
        if self._closed:
            return
        self._closed = True
        for client in self._clients.values():
            client.close()
        if self.gateway is not None:
            self.gateway.close()
        for server in self.servers:
            server.close()

    def __enter__(self) -> "CDStoreSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
