"""Simulated multi-cloud testbed.

The paper evaluates CDStore on a LAN of 1 Gb/s machines and on four
commercial clouds (Amazon, Google, Azure, Rackspace — Table 2).  Neither
testbed is available to a reproduction, so this package simulates them:

* :mod:`repro.cloud.network` — bandwidth/latency link models and the
  shared-uplink contention model that shapes the paper's transfer speeds;
* :mod:`repro.cloud.provider` — a cloud provider = storage backend + VM
  (the co-locating CDStore server) + links + failure injection;
* :mod:`repro.cloud.testbed` — ready-made LAN and commercial-cloud testbed
  configurations calibrated to §5.1/Table 2, plus the performance model
  used by the transfer-speed experiments (Figures 7-8).

Transfers run in *simulated time*: real data flows through the real client,
server, dedup and container code, while the clock charges network, disk and
compute costs from the calibrated models.  Absolute MB/s therefore land in
the paper's range even though pure Python is orders of magnitude slower
than the authors' C++ prototype; the shape claims (who is bottlenecked by
what) carry over unchanged.
"""

from repro.cloud.network import Link, SimClock
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import (
    CLOUD_LINKS,
    PerformanceModel,
    Testbed,
    cloud_testbed,
    lan_testbed,
)

__all__ = [
    "CLOUD_LINKS",
    "CloudProvider",
    "Link",
    "PerformanceModel",
    "SimClock",
    "Testbed",
    "cloud_testbed",
    "lan_testbed",
]
