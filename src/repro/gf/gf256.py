"""Arithmetic over the finite field GF(2^8).

This is the workhorse substrate for Reed-Solomon coding (§3.2 of the paper),
Rabin's IDA, and the ramp/Shamir secret-sharing schemes.  The paper uses
GF-Complete [48] for SIMD Galois arithmetic; here we use the classic
log/exp-table technique with numpy table-gather kernels for bulk operations,
which is the same algorithm GF-Complete accelerates.

The field is GF(2^8) = GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the
primitive polynomial ``0x11D`` commonly used by storage erasure codes
(Plank's tutorial [46,47]).  The generator is ``x`` (0x02).

Two calling styles are supported:

* module-level functions (``gf_mul``, ``gf_div``...) operating on Python ints
  and numpy arrays, and
* the :class:`GF256` namespace object for callers that prefer an explicit
  field handle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group.
GROUP_ORDER = 255

#: Field size.
FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the exp/log tables for GF(2^8) under ``PRIMITIVE_POLY``.

    ``exp[i] = g^i`` for i in [0, 509] (doubled so that products of logs can
    be looked up without a modular reduction), and ``log[exp[i]] = i`` for
    i in [0, 254].  ``log[0]`` is set to a sentinel that is never read by
    correct code paths.
    """
    exp = np.zeros(2 * GROUP_ORDER, dtype=np.int32)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(GROUP_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[GROUP_ORDER:] = exp[:GROUP_ORDER]
    log[0] = -1  # sentinel; multiplication by zero is special-cased
    return exp, log


_EXP, _LOG = _build_tables()

#: 256x256 full multiplication table; ~64 KB, used for fast scalar-vector
#: products in the erasure kernels (one row gather per coefficient).
_MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
for _a in range(1, FIELD_SIZE):
    _log_a = _LOG[_a]
    _MUL_TABLE[_a, 1:] = _EXP[_log_a + _LOG[1:]].astype(np.uint8)
del _a, _log_a


def gf_add(a, b):
    """Field addition (and subtraction): XOR.

    Works on ints and numpy arrays alike.
    """
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements (scalars)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_pow(a: int, power: int) -> int:
    """Raise field element ``a`` to an integer power (may be negative)."""
    if a == 0:
        if power == 0:
            return 1
        if power < 0:
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
        return 0
    exponent = (_LOG[a] * power) % GROUP_ORDER
    return int(_EXP[exponent])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises on ``a == 0``."""
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return int(_EXP[GROUP_ORDER - _LOG[a]])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` in the field."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % GROUP_ORDER])


def gf_exp(i: int) -> int:
    """Return ``g^i`` for the field generator g = 0x02."""
    return int(_EXP[i % GROUP_ORDER])


def gf_log(a: int) -> int:
    """Discrete log base g of a nonzero field element."""
    if a == 0:
        raise ZeroDivisionError("log(0) is undefined in GF(256)")
    return int(_LOG[a])


def gf_mul_bytes(coeff: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    This is the inner kernel of Reed-Solomon encoding: one gather from the
    precomputed 256x256 multiplication table.  ``data`` must be a uint8
    array; a new array is returned.
    """
    if not 0 <= coeff < FIELD_SIZE:
        raise ParameterError(f"coefficient {coeff} outside GF(256)")
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    return _MUL_TABLE[coeff][data]


def gf_mul_bytes_into(coeff: int, data: np.ndarray, out: np.ndarray) -> None:
    """XOR ``coeff * data`` into ``out`` in place (multiply-accumulate)."""
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(out, data, out=out)
        return
    np.bitwise_xor(out, _MUL_TABLE[coeff][data], out=out)


def gf_poly_eval(coeffs: list[int] | np.ndarray, x: int) -> int:
    """Evaluate a polynomial with coefficients in GF(256) at point ``x``.

    ``coeffs[0]`` is the constant term (ascending order), matching the
    secret-sharing convention where the constant term carries the secret.
    Uses Horner's rule.
    """
    result = 0
    for coeff in reversed(list(coeffs)):
        result = gf_mul(result, x) ^ int(coeff)
    return result


def gf_poly_eval_bytes(coeff_rows: np.ndarray, x: int) -> np.ndarray:
    """Evaluate many polynomials (one per column) at ``x`` simultaneously.

    ``coeff_rows`` has shape ``(degree + 1, width)``: row ``i`` holds the
    degree-``i`` coefficients of ``width`` independent polynomials.  Returns
    a uint8 array of length ``width``.  This vectorises Shamir share
    generation across a whole secret at once.
    """
    result = np.zeros(coeff_rows.shape[1], dtype=np.uint8)
    for row in coeff_rows[::-1]:
        result = gf_mul_bytes(x, result)
        np.bitwise_xor(result, row, out=result)
    return result


class GF256:
    """Namespace handle over GF(2^8) arithmetic.

    All methods are static delegations to the module-level kernels; the class
    exists so call sites can pass "the field" around explicitly and so tests
    can enumerate field axioms against one object.
    """

    order = FIELD_SIZE
    primitive_poly = PRIMITIVE_POLY

    add = staticmethod(gf_add)
    sub = staticmethod(gf_add)  # characteristic 2: subtraction == addition
    mul = staticmethod(gf_mul)
    div = staticmethod(gf_div)
    inv = staticmethod(gf_inv)
    pow = staticmethod(gf_pow)
    exp = staticmethod(gf_exp)
    log = staticmethod(gf_log)
    mul_bytes = staticmethod(gf_mul_bytes)
    mul_bytes_into = staticmethod(gf_mul_bytes_into)
    poly_eval = staticmethod(gf_poly_eval)
