"""End-to-end tests for the networked serving layer (`repro.net`).

Real loopback sockets, real frames: backups written through
:class:`RemoteServerProxy` restore byte-identically through the in-process
engine (and vice versa), a connection killed mid-restore recovers through
the same window-granular spare failover the in-process stall tests
exercise, and a multi-container restore never sees a reply frame — nor a
server-side working set — beyond the configured frame budget.
"""

from __future__ import annotations

import pytest

from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.errors import CloudUnavailableError, NotFoundError
from repro.lsm.cache import LRUCache
from repro.config import CloudSpec
from repro.net import CDStoreTCPServer, RemoteServerProxy
from repro.server.server import CDStoreServer
from repro.storage.container import KIND_SHARE
from repro.system.cdstore import CDStoreSystem


def make_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(100.0), Link(100.0)),
        )
        for i in range(n)
    ]


@pytest.fixture
def served():
    """Four in-memory servers, each behind a loopback TCP server."""
    servers = make_servers(4)
    tcps = [CDStoreTCPServer(server).start() for server in servers]
    proxies = [
        RemoteServerProxy(f"tcp://{t.address[0]}:{t.address[1]}", server_id=i)
        for i, t in enumerate(tcps)
    ]
    try:
        yield servers, tcps, proxies
    finally:
        for proxy in proxies:
            proxy.close()
        for tcp in tcps:
            tcp.shutdown()


def make_client(servers, user="alice", **kwargs) -> CDStoreClient:
    kwargs.setdefault("chunker", FixedChunker(4096))
    return CDStoreClient(user_id=user, servers=list(servers), k=3,
                         salt=b"org", **kwargs)


def payload(size: int, seed: int = 7) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


class _Wrapped:
    """Delegating server wrapper for failure injection at the TCP layer."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


class CrashingServer(_Wrapped):
    """Serves ``ok_calls`` fetch streams, then dies with a non-Repro error —
    the TCP handler closes the connection abruptly, exactly like a killed
    process, with no error frame for the client to interpret."""

    def __init__(self, inner, ok_calls: int):
        super().__init__(inner)
        self.ok_calls = ok_calls
        self.calls = 0

    def iter_share_batches(self, fingerprints, **kwargs):
        self.calls += 1
        if self.calls > self.ok_calls:
            raise RuntimeError("injected server crash")
        return self._inner.iter_share_batches(fingerprints, **kwargs)


class CountingServer(_Wrapped):
    def __init__(self, inner):
        super().__init__(inner)
        self.fetch_calls = 0

    def iter_share_batches(self, fingerprints, **kwargs):
        self.fetch_calls += 1
        return self._inner.iter_share_batches(fingerprints, **kwargs)


# ---------------------------------------------------------------------------
# cross-transport byte identity
# ---------------------------------------------------------------------------


class TestCrossTransportIdentity:
    def test_socket_backup_restores_inproc_and_back(self, served):
        """One set of servers, two transports: what either engine writes,
        the other restores byte-identically."""
        servers, _tcps, proxies = served
        data_a = payload(50_000, seed=1)
        data_b = payload(50_000, seed=2)

        remote = make_client(proxies)
        local = make_client(servers)

        remote.upload("/via-socket", data_a)
        remote.flush()
        local.upload("/via-inproc", data_b)
        local.flush()

        # Byte-identical across the transport boundary, both directions.
        assert local.download("/via-socket") == data_a
        assert remote.download("/via-inproc") == data_b
        remote.close()
        local.close()

    def test_socket_and_inproc_store_identical_bytes(self, served):
        """The wire layer changes transport, not content: the same upload
        through sockets and through method calls lands the same physical
        bytes on the clouds."""
        servers, _tcps, proxies = served
        shadow = make_servers(4)
        data = payload(40_000)

        remote = make_client(proxies)
        direct = make_client(shadow)
        remote.upload("/f", data)
        remote.flush()
        direct.upload("/f", data)
        direct.flush()

        for via_socket, via_calls in zip(servers, shadow):
            a = via_socket.cloud.backend
            b = via_calls.cloud.backend
            assert a.list_keys() == b.list_keys()
            for key in a.list_keys():
                assert a.get_object(key) == b.get_object(key)
        remote.close()
        direct.close()

    def test_typed_errors_cross_the_wire(self, served):
        _servers, _tcps, proxies = served
        with pytest.raises(NotFoundError):
            proxies[0].get_file_entry("alice", b"\x00" * 32)
        # The connection survives a typed error: the next call works.
        assert proxies[0].ping()

    def test_streaming_pipeline_over_sockets(self, served):
        """The comm engine's streaming upload/restore stages (per-cloud
        workers, bounded windows) run unchanged over the proxies."""
        _servers, _tcps, proxies = served
        data = payload(120_000, seed=3)
        client = make_client(proxies, threads=2, pipeline_depth=3)
        client.restore_window_bytes = 8192
        client.upload("/stream", data)
        client.flush()
        assert client.download("/stream") == data
        assert sorted(client.list_files()) == ["/stream"]
        client.close()


# ---------------------------------------------------------------------------
# mid-restore connection kill -> window-granular failover
# ---------------------------------------------------------------------------


class TestConnectionKillFailover:
    def test_connection_kill_mid_restore_fails_over_per_window(self):
        """A server that dies after serving window 0 drops the socket with
        no reply; the proxy surfaces CloudUnavailableError and the comm
        engine promotes the spare for the remaining windows only."""
        servers = make_servers(4)
        victim = CrashingServer(servers[1], ok_calls=2)  # entry+recipe use 0
        spare = CountingServer(servers[3])
        hosted = [servers[0], victim, servers[2], spare]
        tcps = [CDStoreTCPServer(server).start() for server in hosted]
        proxies = [
            RemoteServerProxy(f"tcp://{t.address[0]}:{t.address[1]}")
            for t in tcps
        ]
        try:
            data = payload(60_000, seed=4)  # 15 windows of one 4 KB secret
            client = make_client(proxies, pipeline_depth=3)
            client.restore_window_bytes = 4096
            client.upload("/f", data)
            client.flush()

            assert client.download("/f") == data
            # The victim served some windows before dying; the spare served
            # the rest — not the whole file.
            assert victim.calls > 1
            assert 0 < spare.fetch_calls < 15
            client.close()
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()

    def test_dead_server_with_no_spare_propagates_as_outage(self, served):
        servers, tcps, proxies = served
        data = payload(30_000, seed=5)
        client = make_client(proxies[:3], pipeline_depth=2)  # k=3, no spare
        client.restore_window_bytes = 4096
        client.upload("/f", data)
        client.flush()
        tcps[1].shutdown()  # kill one chosen cloud, nothing to promote
        from repro.errors import InsufficientCloudsError

        with pytest.raises((CloudUnavailableError, InsufficientCloudsError)):
            client.download("/f")
        client.close()

    def test_proxy_reconnects_after_server_restart(self, served):
        servers, tcps, proxies = served
        assert proxies[0].ping()
        host, port = tcps[0].address
        tcps[0].shutdown()
        assert not proxies[0].ping()
        with pytest.raises(CloudUnavailableError):
            proxies[0].query_duplicates("alice", [])
        # Same address comes back: the proxy's next call reconnects.
        tcps[0] = CDStoreTCPServer(servers[0], host=host, port=port).start()
        assert proxies[0].ping()
        assert proxies[0].query_duplicates("alice", []) == []


# ---------------------------------------------------------------------------
# frame budget: bounded replies and bounded server memory
# ---------------------------------------------------------------------------


class TestFrameBudget:
    def test_multi_container_restore_respects_frame_budget(self, monkeypatch):
        """A restore spanning many containers streams in reply frames that
        never exceed the budget, and the server never materialises a whole
        share container."""
        import repro.storage.container as container_mod

        # Shrink containers so a modest backup spans several of them.
        monkeypatch.setattr(container_mod, "CONTAINER_CAP", 16 << 10)

        servers = make_servers(4)
        budget = 8 << 10
        tcps = [
            CDStoreTCPServer(server, frame_budget=budget).start()
            for server in servers
        ]
        proxies = [
            RemoteServerProxy(f"tcp://{t.address[0]}:{t.address[1]}")
            for t in tcps
        ]
        try:
            data = payload(160_000, seed=6)
            client = make_client(proxies)
            client.upload("/big", data)
            client.flush()

            for server in servers:
                share_containers = [
                    cid
                    for cid in server.cloud.backend.list_keys("container-")
                    if server.cloud.backend.get_object(cid)[4] == KIND_SHARE
                ]
                assert len(share_containers) >= 2, "test needs >1 container"
                # Force cold reads: the ranged path, not the blob cache.
                server.containers._cache = LRUCache(1, size_of=len)

            # Spy on whole-container materialisation during the restore.
            whole_reads: list[str] = []
            original = container_mod.ContainerManager.read_container

            def spying(self, container_id, bypass_cache=False):
                whole_reads.append(container_id)
                return original(self, container_id, bypass_cache=bypass_cache)

            monkeypatch.setattr(
                container_mod.ContainerManager, "read_container", spying
            )

            for proxy in proxies:
                proxy.max_reply_frame_bytes = 0

            assert client.download("/big") == data

            # 1. No reply frame exceeded the budget.
            for proxy in proxies:
                assert 0 < proxy.max_reply_frame_bytes <= budget
            # 2. No share container was ever materialised whole server-side
            #    (recipe containers may be — recipes are small).
            for server in servers:
                backend = server.cloud.backend
                for cid in whole_reads:
                    if backend.exists(cid):
                        assert backend.get_object(cid)[4] != KIND_SHARE
            client.close()
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()

    def test_inproc_fetch_never_materialises_share_containers(self, monkeypatch):
        """The ROADMAP open item, closed for the in-process path too: the
        plain method-call fetch_shares serves cold restores via ranged
        entry reads."""
        import repro.storage.container as container_mod

        monkeypatch.setattr(container_mod, "CONTAINER_CAP", 16 << 10)
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        client = system.client("alice", chunker=FixedChunker(4096))
        data = payload(120_000, seed=8)
        client.upload("/f", data)
        client.flush()
        for server in system.servers:
            server.containers._cache = LRUCache(1, size_of=len)

        whole_reads: list[tuple[object, str]] = []
        original = container_mod.ContainerManager.read_container

        def spying(self, container_id, bypass_cache=False):
            whole_reads.append((self, container_id))
            return original(self, container_id, bypass_cache=bypass_cache)

        monkeypatch.setattr(
            container_mod.ContainerManager, "read_container", spying
        )
        assert client.download("/f") == data
        for manager, cid in whole_reads:
            if manager.backend.exists(cid):
                assert manager.backend.get_object(cid)[4] != KIND_SHARE
        system.close()

    def test_fetch_batches_respect_payload_budget(self):
        """The shared batching helper caps each batch at the byte budget."""
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        client = system.client("alice", chunker=FixedChunker(2048))
        client.upload("/f", payload(40_000, seed=9))
        client.flush()
        server = system.servers[0]
        recipe = server.get_recipe("alice", client._lookup_key("/f"))
        fps = [entry.fingerprint for entry in recipe]
        budget = 4096
        batches = list(server.iter_share_batches(fps, budget_bytes=budget))
        assert sum(len(batch) for batch in batches) == len(set(fps))
        for batch in batches:
            size = sum(len(data) for _, data in batch)
            assert size <= budget or len(batch) == 1
        system.close()


# ---------------------------------------------------------------------------
# address parsing
# ---------------------------------------------------------------------------


class TestCloudSpecParsing:
    def test_valid_specs(self):
        assert CloudSpec.parse("tcp://localhost:9300").address == ("localhost", 9300)
        assert CloudSpec.parse("tcp://10.0.0.1:1").address == ("10.0.0.1", 1)

    @pytest.mark.parametrize("spec", [
        "localhost:9300", "tcp://", "tcp://host", "tcp://:9300",
        "tcp://host:", "tcp://host:abc", "tcp://host:0", "tcp://host:70000",
        "udp://host:1", "",
    ])
    def test_malformed_specs_rejected(self, spec):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            CloudSpec.parse(spec)


# ---------------------------------------------------------------------------
# mixed deployments through CDStoreSystem
# ---------------------------------------------------------------------------


class TestMixedSystem:
    def test_mixed_local_and_remote_clouds(self):
        backing = make_servers(4)
        tcps = [CDStoreTCPServer(backing[i]).start() for i in (2, 3)]
        try:
            clouds = [
                backing[0].cloud,
                backing[1].cloud,
                f"tcp://{tcps[0].address[0]}:{tcps[0].address[1]}",
                f"tcp://{tcps[1].address[0]}:{tcps[1].address[1]}",
            ]
            system = CDStoreSystem(n=4, k=3, salt=b"org", clouds=clouds)
            # Local slots talk straight to the backing servers so both
            # halves of the deployment share state.
            system.servers[0] = backing[0]
            system.servers[1] = backing[1]
            assert system.remote_indices == {2, 3}
            client = system.client("alice", chunker=FixedChunker(4096))
            data = payload(30_000, seed=10)
            client.upload("/f", data)
            client.flush()
            assert client.download("/f") == data
            stats = system.global_stats()
            assert stats.physical_shares > 0  # remote stats RPC folded in
            system.close()
        finally:
            for tcp in tcps:
                tcp.shutdown()

    def test_failure_injection_rejected_on_remote_clouds(self):
        backing = make_servers(1)
        with CDStoreTCPServer(backing[0]) as tcp:
            spec = f"tcp://{tcp.address[0]}:{tcp.address[1]}"
            system = CDStoreSystem(n=1, k=1, clouds=[spec])
            from repro.errors import ParameterError

            for op in (system.fail_cloud, system.recover_cloud, system.wipe_cloud):
                with pytest.raises(ParameterError):
                    op(0)
            system.close()

    def test_wrong_server_id_rejected_at_handshake(self):
        backing = make_servers(2)
        with CDStoreTCPServer(backing[1]) as tcp:  # serves id 1
            proxy = RemoteServerProxy(
                f"tcp://{tcp.address[0]}:{tcp.address[1]}", server_id=0
            )
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError, match="server id"):
                proxy.query_duplicates("alice", [])
            proxy.close()
