#!/usr/bin/env python3
"""A tour of the secret-sharing design space (§2 / Table 1).

Splits the same secret with every algorithm the paper surveys — SSSS, IDA,
RSSS, SSMS, AONT-RS — plus the convergent instantiations, and prints their
confidentiality degree, storage blowup and deduplicability side by side.
Then demonstrates *why* CDStore needed convergent dispersal: classical
schemes produce different shares for identical secrets.

Run:  python examples/secret_sharing_tour.py
"""

from __future__ import annotations

import os

from repro import AONTRS, CAONTRS
from repro.bench.reporting import format_table
from repro.bench.table1 import scheme_comparison


def main() -> None:
    rows = scheme_comparison(n=4, k=3, rsss_r=1, secret_size=8192)
    print(format_table(
        ["scheme", "confidentiality r", "storage blowup", "deduplicable"],
        [[r.scheme, r.r, r.measured_blowup, "yes" if r.deterministic else "no"] for r in rows],
        title="Table 1 at (n, k) = (4, 3), 8 KB secret, RSSS r = 1",
    ))

    print("\n--- why convergent dispersal? ---")
    secret = os.urandom(8192)

    aont_rs = AONTRS(4, 3)
    a, b = aont_rs.split(secret), aont_rs.split(secret)
    print(f"AONT-RS, same secret twice: shares identical? "
          f"{a.shares == b.shares}  (random key -> no dedup)")

    caont_rs = CAONTRS(4, 3)
    c, d = caont_rs.split(secret), caont_rs.split(secret)
    print(f"CAONT-RS, same secret twice: shares identical? "
          f"{c.shares == d.shares}  (hash key -> dedupable)")

    # ...while still hiding everything from fewer than k shares: flipping
    # one byte of the secret scrambles every share completely.
    flipped = bytearray(secret)
    flipped[0] ^= 1
    e = caont_rs.split(bytes(flipped))
    same_bytes = sum(
        x == y for x, y in zip(c.shares[0], e.shares[0])
    ) / len(c.shares[0])
    print(f"one secret bit flipped: share 0 bytes unchanged = {same_bytes:.1%} "
          f"(~random agreement)")


if __name__ == "__main__":
    main()
