"""LZSS dictionary compression.

A classic byte-oriented LZSS: the encoder emits a stream of tokens, each
either a literal byte or a back-reference ``(offset, length)`` into a
sliding window.  Tokens are framed by flag bytes (one flag bit per token,
LSB first; 1 = reference, 0 = literal), references are 16-bit little-
endian ``offset:12 | (length - MIN_MATCH):4``.

Match finding uses hash chains over 3-byte prefixes with a bounded probe
count, trading a little ratio for predictable speed — the pure-Python
envelope this library lives in.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = ["lzss_compress", "lzss_decompress"]

WINDOW_BITS = 12
WINDOW_SIZE = 1 << WINDOW_BITS  # 4096
MIN_MATCH = 3
MAX_MATCH = MIN_MATCH + 15  # 4-bit length field
_MAX_PROBES = 32


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 16 | data[pos + 1] << 8 | data[pos + 2]) * 2654435761 >> 16 & 0xFFFF


def lzss_compress(data: bytes) -> bytes:
    """Compress ``data``; always decompressible, may expand ~12% worst-case."""
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    # token buffer per flag byte
    flags = 0
    flag_bits = 0
    pending = bytearray()
    head: dict[int, int] = {}
    prev: dict[int, int] = {}

    def flush_group() -> None:
        nonlocal flags, flag_bits, pending
        if flag_bits:
            out.append(flags)
            out.extend(pending)
            flags = 0
            flag_bits = 0
            pending = bytearray()

    pos = 0
    while pos < n:
        best_len = 0
        best_off = 0
        if pos + MIN_MATCH <= n:
            key = _hash3(data, pos)
            candidate = head.get(key)
            probes = 0
            limit = min(MAX_MATCH, n - pos)
            while candidate is not None and probes < _MAX_PROBES:
                if pos - candidate > WINDOW_SIZE - 1:
                    break
                length = 0
                while length < limit and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_off = pos - candidate
                    if length >= limit:
                        break
                candidate = prev.get(candidate)
                probes += 1
        if best_len >= MIN_MATCH:
            token = best_off << 4 | (best_len - MIN_MATCH)
            pending.append(token & 0xFF)
            pending.append(token >> 8)
            flags |= 1 << flag_bits
            step = best_len
        else:
            pending.append(data[pos])
            step = 1
        flag_bits += 1
        if flag_bits == 8:
            flush_group()
        # Index every position we consume so later matches can refer here.
        end = min(pos + step, n - MIN_MATCH + 1)
        for p in range(pos, max(pos, end)):
            key = _hash3(data, p)
            if key in head:
                prev[p] = head[key]
            head[key] = p
        pos += step
    flush_group()
    return bytes(out)


def lzss_decompress(blob: bytes, expected_size: int | None = None) -> bytes:
    """Invert :func:`lzss_compress`.

    ``expected_size`` (if given) is validated against the output length.
    """
    out = bytearray()
    pos = 0
    n = len(blob)
    while pos < n:
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if pos >= n:
                break
            if flags >> bit & 1:
                if pos + 2 > n:
                    raise ParameterError("truncated LZSS reference")
                token = blob[pos] | blob[pos + 1] << 8
                pos += 2
                offset = token >> 4
                length = (token & 0xF) + MIN_MATCH
                if offset == 0 or offset > len(out):
                    raise ParameterError("LZSS reference outside window")
                start = len(out) - offset
                for i in range(length):
                    out.append(out[start + i])
            else:
                out.append(blob[pos])
                pos += 1
    if expected_size is not None and len(out) != expected_size:
        raise ParameterError(
            f"LZSS output {len(out)} bytes, expected {expected_size}"
        )
    return bytes(out)
