"""Testbed configurations and the transfer-time performance model.

Reproduces the two networked testbeds of §5.1 and the performance model
behind Figures 7-8:

* **LAN testbed** — client and four servers on a 1 Gb/s switch with an
  effective speed of ~110 MB/s per NIC (§5.5), servers writing containers
  to a 7200 RPM SATA disk;
* **Cloud testbed** — four commercial clouds with the per-cloud speeds the
  paper measures in Table 2 (4 MB-unit transfers from Hong Kong).

The model is deliberately simple — every term is named after the sentence
in §5.5 that motivates it:

* upload wall-clock = max(client compute, client shared uplink, slowest
  per-cloud connection, server ingest = max(NIC, disk, CPU));
* duplicate data moves no share bytes, so its "upload" reduces to client
  compute (chunking + encoding + fingerprinting), reproducing the dup ≫
  uniq gap and its amplification on the slow cloud links;
* multi-client aggregate speed saturates at the server ingest capacity,
  reproducing the Figure 8 knee.

Compute rates default to the paper's own Local-i5 measurements (§5.3), so
the simulated absolute numbers land in the paper's range; pass your own
:class:`PerformanceModel` to explore other hardware (the Local-Xeon
constants are provided too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.network import MB, Link, batch_count as _batches
from repro.cloud.provider import CloudProvider
from repro.errors import ParameterError

__all__ = [
    "CLOUD_LINKS",
    "PerformanceModel",
    "Testbed",
    "cloud_testbed",
    "lan_testbed",
    "LOCAL_I5",
    "LOCAL_XEON",
]

#: Table 2 — measured per-cloud speeds (MB/s) of the commercial testbed.
CLOUD_LINKS: dict[str, tuple[float, float]] = {
    "amazon": (5.87, 4.45),
    "google": (4.99, 4.45),
    "azure": (19.59, 13.78),
    "rackspace": (19.42, 12.93),
}


@dataclass(frozen=True)
class PerformanceModel:
    """Compute/disk rates (MB/s of logical data) for simulated time.

    Defaults follow §5.3's Local-i5 numbers with two encoding threads:
    CAONT-RS encoding at 183 MB/s, combined chunking+encoding at 154 MB/s
    (the paper reports the combination drops ~16 %), servers ingesting
    through a SATA disk and spending CPU on inter-user dedup.
    """

    encode_mbps: float = 183.0
    chunk_encode_mbps: float = 154.0
    decode_mbps: float = 183.0
    server_disk_write_mbps: float = 90.0
    server_disk_read_mbps: float = 100.0
    #: Per-server CPU capacity for fingerprinting incoming metadata and
    #: updating the dedup index, in MB/s of *logical* client data (every
    #: server sees every secret's metadata).  Sets the Figure 8 knee: with
    #: 4+ clients producing ~150 MB/s of logical data each, server CPU
    #: saturates ("the knee point at four CDStore clients is due to the
    #: saturation of CPU resources in each CDStore server", §5.5).
    server_cpu_mbps: float = 572.0
    #: Fraction of the client's physical downlink usable by bursty
    #: container-at-a-time server replies (§5.5 reports downloads ~10 %
    #: under the effective link speed because servers fetch containers from
    #: disk before replying).
    downlink_utilization: float = 0.9
    #: Share bytes covered by one intra-user dedup query round trip.  On
    #: high-latency Internet paths these serialised round trips are what
    #: bound duplicate-data uploads (Figure 7a's cloud dup speed).
    query_batch_bytes: int = 1 << 20

    def scaled_threads(self, threads: int, base_threads: int = 2) -> "PerformanceModel":
        """Scale client compute rates for a different thread count.

        Figure 5(a) shows near-linear scaling from 1 to 4 threads; we model
        it as proportional, which is what the paper observes up to the core
        count.
        """
        if threads <= 0:
            raise ParameterError(f"threads must be positive, got {threads}")
        factor = threads / base_threads
        return PerformanceModel(
            encode_mbps=self.encode_mbps * factor,
            chunk_encode_mbps=self.chunk_encode_mbps * factor,
            decode_mbps=self.decode_mbps * factor,
            server_disk_write_mbps=self.server_disk_write_mbps,
            server_disk_read_mbps=self.server_disk_read_mbps,
            server_cpu_mbps=self.server_cpu_mbps,
            downlink_utilization=self.downlink_utilization,
            query_batch_bytes=self.query_batch_bytes,
        )


#: §5.3 compute rates for the two local machines (2 encoding threads).
LOCAL_I5 = PerformanceModel()
LOCAL_XEON = PerformanceModel(
    encode_mbps=83.0, chunk_encode_mbps=69.0, decode_mbps=83.0
)


@dataclass
class Testbed:
    """A named set of clouds plus the client-side shared link capacities."""

    name: str
    clouds: list[CloudProvider]
    #: Aggregate client uplink/downlink caps (MB/s) across all connections.
    client_uplink_mbps: float
    client_downlink_mbps: float
    model: PerformanceModel = field(default_factory=PerformanceModel)

    @property
    def n(self) -> int:
        return len(self.clouds)

    # ------------------------------------------------------------------
    # transfer-time model (Figures 7-8)
    # ------------------------------------------------------------------
    def _upload_terms(
        self,
        logical_bytes: int,
        wire_bytes_per_cloud: list[float],
        clients: int = 1,
        k: int | None = None,
    ) -> tuple[float, float, list[float], list[float], list[float]]:
        """The named stage times of one upload (see :meth:`upload_time`).

        Returns ``(compute, shared_uplink, per_cloud, query_rtts,
        server_terms)`` so the pipelined and serial schedules can combine
        the same terms differently.
        """
        if len(wire_bytes_per_cloud) != self.n:
            raise ParameterError(
                f"expected {self.n} per-cloud byte counts, got "
                f"{len(wire_bytes_per_cloud)}"
            )
        compute = logical_bytes / (self.model.chunk_encode_mbps * MB)
        total_wire = float(sum(wire_bytes_per_cloud))
        shared_uplink = total_wire / (self.client_uplink_mbps * MB)
        # Per-cloud ingress: the server NIC is shared by all concurrent
        # clients (Figure 8's "without disk I/O ... approximates to the
        # aggregate effective Ethernet speed" observation).
        per_cloud = [
            cloud.uplink.transfer_time(int(clients * nbytes), batches=_batches(nbytes))
            for cloud, nbytes in zip(self.clouds, wire_bytes_per_cloud)
        ]
        # Intra-user dedup queries: one round trip per query batch of share
        # fingerprints, serialised within each cloud connection (this is
        # what caps duplicate-data uploads on high-latency Internet paths —
        # the cloud-testbed dup/uniq gap of Figure 7a).
        k_eff = k if k is not None else max(1, self.n - 1)
        share_stream = logical_bytes / k_eff
        query_rtts = [
            _batches(share_stream, unit=self.model.query_batch_bytes)
            * 2
            * cloud.uplink.latency_s
            for cloud in self.clouds
        ]
        # Server-side ingest: NIC sharing is inside the per-cloud link; disk
        # and CPU are charged per server and scale with concurrent clients.
        server_terms = []
        for nbytes in wire_bytes_per_cloud:
            disk = clients * nbytes / (self.model.server_disk_write_mbps * MB)
            cpu = clients * logical_bytes / (self.model.server_cpu_mbps * MB)
            server_terms.append(max(disk, cpu))
        return compute, shared_uplink, per_cloud, query_rtts, server_terms

    def upload_time(
        self,
        logical_bytes: int,
        wire_bytes_per_cloud: list[float],
        clients: int = 1,
        k: int | None = None,
    ) -> float:
        """Wall-clock seconds to upload one client-batch of data.

        ``logical_bytes`` is the pre-dispersal data size (drives compute);
        ``wire_bytes_per_cloud[i]`` is what actually crosses the Internet to
        cloud ``i`` after intra-user deduplication.  With ``clients`` > 1,
        per-server resources are shared (Figure 8); the return value is the
        makespan for *one* client, assuming symmetric clients.
        """
        compute, shared_uplink, per_cloud, query_rtts, server_terms = (
            self._upload_terms(logical_bytes, wire_bytes_per_cloud, clients, k)
        )
        # Pipelined stages: the slowest stage dominates (§4.6 multi-threading).
        return max([compute, shared_uplink] + per_cloud + query_rtts + server_terms)

    def upload_time_serial(
        self,
        logical_bytes: int,
        wire_bytes_per_cloud: list[float],
        clients: int = 1,
        k: int | None = None,
    ) -> float:
        """Un-pipelined upload wall-clock: encode + upload as serial phases.

        The schedule of a ``threads=1, pipeline_depth=1`` client: chunk and
        encode the whole file first, then visit the cloud connections one
        after another (each connection's dedup-query round trips ride with
        its transfer; the server ingests while it receives, so each visit
        costs ``max(wire, ingest)``).  The gap between this and
        :meth:`upload_time` is exactly what the comm engine's streaming
        transfer stage buys — wire time no longer hides behind encoding,
        nor do the clouds overlap each other.
        """
        compute, _shared_uplink, per_cloud, query_rtts, server_terms = (
            self._upload_terms(logical_bytes, wire_bytes_per_cloud, clients, k)
        )
        return compute + sum(
            max(wire + query, server)
            for wire, query, server in zip(per_cloud, query_rtts, server_terms)
        )

    def download_time(
        self,
        logical_bytes: int,
        wire_bytes_per_cloud: dict[int, float],
        fragmentation: float = 0.0,
    ) -> float:
        """Wall-clock seconds to download from the chosen ``k`` clouds.

        ``wire_bytes_per_cloud`` maps cloud index to share bytes fetched
        from it.  Servers read containers from the disk backend before
        replying, which keeps downloads under the raw link speed (§5.5);
        ``fragmentation`` ∈ [0, 1) further derates the client downlink
        utilisation for deduplicated backups whose chunks scatter across
        containers ("deduplication now introduces chunk fragmentation [38]
        for subsequent backups", §5.5).
        """
        if not 0 <= fragmentation < 1:
            raise ParameterError(f"fragmentation must be in [0, 1), got {fragmentation}")
        compute = logical_bytes / (self.model.decode_mbps * MB)
        utilization = self.model.downlink_utilization * (1.0 - fragmentation)
        total_wire = float(sum(wire_bytes_per_cloud.values()))
        shared_downlink = total_wire / (self.client_downlink_mbps * utilization * MB)
        per_cloud = []
        for idx, nbytes in wire_bytes_per_cloud.items():
            link_t = self.clouds[idx].downlink.transfer_time(
                int(nbytes), batches=_batches(nbytes)
            )
            disk_t = nbytes / (self.model.server_disk_read_mbps * MB)
            # Server disk read and network send are serialised per request
            # batch (fetch container, then reply), hence the sum.
            per_cloud.append(link_t + disk_t)
        return max([compute, shared_downlink] + per_cloud)


# ---------------------------------------------------------------------------
# testbed factories (§5.1)
# ---------------------------------------------------------------------------


def lan_testbed(
    n: int = 4,
    effective_mbps: float = 110.0,
    model: PerformanceModel | None = None,
) -> Testbed:
    """The 1 Gb/s LAN testbed: ``n`` servers, ~110 MB/s effective links."""
    clouds = [
        CloudProvider(
            name=f"lan-server-{i}",
            uplink=Link(effective_mbps),
            downlink=Link(effective_mbps),
        )
        for i in range(n)
    ]
    return Testbed(
        name="lan",
        clouds=clouds,
        client_uplink_mbps=effective_mbps,
        client_downlink_mbps=effective_mbps,
        model=model or PerformanceModel(),
    )


def cloud_testbed(model: PerformanceModel | None = None) -> Testbed:
    """The four-cloud commercial testbed with Table 2 link speeds.

    The aggregate uplink cap reflects the Hong Kong site's Internet
    capacity implied by the paper's measured 6.2 MB/s unique-data upload
    (total wire = 4/3 of logical data ⇒ ~8.3 MB/s shared uplink).
    """
    clouds = [
        CloudProvider(
            name=name,
            uplink=Link(up, latency_s=0.025),
            downlink=Link(down, latency_s=0.025),
        )
        for name, (up, down) in CLOUD_LINKS.items()
    ]
    return Testbed(
        name="cloud",
        clouds=clouds,
        client_uplink_mbps=8.3,
        client_downlink_mbps=30.0,
        model=model or PerformanceModel(),
    )
