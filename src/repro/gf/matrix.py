"""Dense matrix algebra over GF(2^8).

Provides the matrix kernels the erasure codes are built on: multiplication,
Gauss-Jordan inversion, and the Vandermonde / Cauchy generator-matrix
constructions used to derive *systematic* Reed-Solomon codes (the paper's
CAONT-RS uses a systematic code so that the first ``k`` shares are the
original CAONT package pieces, §2).

Matrices are numpy uint8 arrays of shape ``(rows, cols)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError, ParameterError
from repro.gf.gf256 import FIELD_SIZE, gf_div, gf_inv, gf_mul, gf_pow

__all__ = [
    "identity_matrix",
    "gf_mat_mul",
    "gf_mat_vec",
    "gf_mat_vec_stack",
    "gf_mat_inv",
    "vandermonde_matrix",
    "systematic_vandermonde_matrix",
    "cauchy_matrix",
    "systematic_cauchy_matrix",
]


def identity_matrix(size: int) -> np.ndarray:
    """Return the ``size`` x ``size`` identity matrix over GF(256)."""
    return np.eye(size, dtype=np.uint8)


def gf_mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(256) matrices.

    Shapes follow ordinary matrix multiplication: ``(m, p) @ (p, n)``.
    Implemented as per-entry log/exp products accumulated with XOR; the
    matrices involved here are tiny (at most ~20x20), so clarity wins over
    blocking tricks.
    """
    if a.shape[1] != b.shape[0]:
        raise ParameterError(f"incompatible shapes {a.shape} x {b.shape}")
    rows, inner = a.shape
    cols = b.shape[1]
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


def gf_mat_vec(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Apply ``matrix`` to a stack of data rows.

    ``data`` has shape ``(k, width)``: ``k`` input pieces of ``width`` bytes
    each.  Returns ``(rows, width)`` where row ``i`` is the GF-linear
    combination of the inputs given by matrix row ``i``.  This is the bulk
    path used by Reed-Solomon encode/decode, vectorised with the 256x256
    multiplication table.
    """
    from repro.gf.gf256 import gf_mul_bytes_into

    if matrix.shape[1] != data.shape[0]:
        raise ParameterError(
            f"matrix cols {matrix.shape[1]} != data rows {data.shape[0]}"
        )
    rows = matrix.shape[0]
    out = np.zeros((rows, data.shape[1]), dtype=np.uint8)
    for i in range(rows):
        for t in range(matrix.shape[1]):
            gf_mul_bytes_into(int(matrix[i, t]), data[t], out[i])
    return out


def gf_mat_vec_stack(
    matrix: np.ndarray, stack: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Apply ``matrix`` to every codeword of a ``(B, k, width)`` stack.

    ``stack[b]`` holds one codeword's ``k`` input pieces; ``out`` must be a
    zeroed ``(B, rows, width)`` uint8 array and receives matrix row ``i``
    applied to each codeword at ``out[:, i, :]``.  Each multiply-accumulate
    spans the whole batch (one table gather over ``B * width`` bytes), so
    the per-call numpy overhead of :func:`gf_mat_vec` is amortised across
    all ``B`` codewords without transposing the stack into a flat layout.
    """
    from repro.gf.gf256 import gf_mul_bytes_into

    if matrix.shape[1] != stack.shape[1]:
        raise ParameterError(
            f"matrix cols {matrix.shape[1]} != stack pieces {stack.shape[1]}"
        )
    if out.shape != (stack.shape[0], matrix.shape[0], stack.shape[2]):
        raise ParameterError(
            f"out shape {out.shape} does not match "
            f"({stack.shape[0]}, {matrix.shape[0]}, {stack.shape[2]})"
        )
    for i in range(matrix.shape[0]):
        for t in range(matrix.shape[1]):
            gf_mul_bytes_into(int(matrix[i, t]), stack[:, t, :], out[:, i, :])
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    Raises :class:`CodingError` if the matrix is singular (which, for
    Reed-Solomon decode matrices, means the chosen shares cannot reconstruct
    the data — callers translate this into share-selection retries).
    """
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ParameterError(f"matrix {matrix.shape} is not square")
    work = matrix.astype(np.int32).copy()
    inv = np.eye(size, dtype=np.int32)
    for col in range(size):
        # Find a pivot at or below the diagonal.
        pivot = -1
        for row in range(col, size):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot < 0:
            raise CodingError("singular matrix over GF(256)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        # Scale pivot row so the diagonal entry becomes 1.
        scale = gf_inv(int(work[col, col]))
        for j in range(size):
            work[col, j] = gf_mul(int(work[col, j]), scale)
            inv[col, j] = gf_mul(int(inv[col, j]), scale)
        # Eliminate the column from every other row.
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(size):
                work[row, j] ^= gf_mul(factor, int(work[col, j]))
                inv[row, j] ^= gf_mul(factor, int(inv[col, j]))
    return inv.astype(np.uint8)


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[i, j] = i^j``.

    Uses evaluation points 0, 1, ..., rows-1 with the convention
    ``0^0 = 1``.  Any ``cols`` rows of this matrix are linearly independent
    provided ``rows <= FIELD_SIZE``, which is what Reed-Solomon relies on.
    """
    if rows > FIELD_SIZE:
        raise ParameterError(f"at most {FIELD_SIZE} rows supported, got {rows}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j) if i else (1 if j == 0 else 0)
    return out


def systematic_vandermonde_matrix(n: int, k: int) -> np.ndarray:
    """Build an ``n`` x ``k`` systematic generator matrix from Vandermonde.

    Column-reduces the ``n x k`` Vandermonde matrix so its top ``k`` rows
    become the identity (Plank's construction [46,47]).  The resulting code
    is MDS: any ``k`` of the ``n`` output rows are invertible, and the first
    ``k`` outputs equal the inputs (systematic property CAONT-RS needs).
    """
    if not 0 < k <= n <= FIELD_SIZE:
        raise ParameterError(f"invalid (n={n}, k={k}) for GF(256)")
    vand = vandermonde_matrix(n, k)
    top_inv = gf_mat_inv(vand[:k])
    return gf_mat_mul(vand, top_inv)


def cauchy_matrix(xs: list[int], ys: list[int]) -> np.ndarray:
    """Return the Cauchy matrix ``C[i, j] = 1 / (xs[i] + ys[j])``.

    ``xs`` and ``ys`` must be disjoint lists of distinct field elements.
    Every square submatrix of a Cauchy matrix is invertible, which makes it
    an alternative MDS construction (used by Blomer et al. [17]).
    """
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ParameterError("Cauchy points must be distinct")
    if set(xs) & set(ys):
        raise ParameterError("Cauchy xs and ys must be disjoint")
    out = np.zeros((len(xs), len(ys)), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = gf_div(1, x ^ y)
    return out


def systematic_cauchy_matrix(n: int, k: int) -> np.ndarray:
    """Build an ``n`` x ``k`` systematic MDS generator matrix via Cauchy.

    The top ``k`` rows are the identity; the bottom ``n - k`` rows are the
    Cauchy matrix on points ``xs = {k..n-1}``, ``ys = {0..k-1}`` mapped into
    the field.  Any ``k`` rows remain invertible.
    """
    if not 0 < k <= n or n - k + k > FIELD_SIZE:
        raise ParameterError(f"invalid (n={n}, k={k}) for GF(256)")
    if n == k:
        return identity_matrix(k)
    parity = cauchy_matrix(list(range(k, n)), list(range(k)))
    return np.vstack([identity_matrix(k), parity])
