"""Figure 5(b) — encoding speed vs n (number of clouds), k = floor(3n/4).

Paper: speeds decline only slightly with n (about 8 % from n=4 to n=20 for
CAONT-RS) because Reed-Solomon parity generation is cheap next to the
AONT's cryptographic work.
"""

from conftest import BENCH_CHUNKER, emit, scaled

from repro.bench.encoding import FIGURE5_SCHEMES, _make_secrets, encoding_speed, figure5b_k
from repro.bench.reporting import format_table

DATA_BYTES = scaled(1 << 20, floor=256 << 10)
N_LIST = (4, 8, 12, 16, 20)


def test_fig5b(benchmark):
    secrets = _make_secrets(DATA_BYTES, chunker=BENCH_CHUNKER)

    def run():
        return [
            encoding_speed(scheme, n=n, k=figure5b_k(n), threads=2, secrets=secrets)
            for scheme in FIGURE5_SCHEMES
            for n in N_LIST
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["scheme", "n", "k", "MB/s"],
        [[r.scheme, r.n, r.k, r.mbps] for r in results],
        title="Figure 5(b): encoding speed vs n (k = 3n/4), 2 threads",
    )
    emit("fig5b", table)

    speed = {(r.scheme, r.n): r.mbps for r in results}
    for n in N_LIST:
        # CAONT-RS stays fastest at every n.
        assert speed[("caont-rs", n)] > speed[("caont-rs-rivest", n)]
    # Declining with n: the paper sees only ~8% from n=4 to n=20 because
    # GF-Complete makes Reed-Solomon nearly free next to AONT; in pure
    # Python the per-coefficient dispatch overhead is relatively much
    # larger, so we assert the weaker monotone-shape claim.
    assert speed[("caont-rs", 20)] < speed[("caont-rs", 4)]
    assert speed[("caont-rs", 20)] > 0.15 * speed[("caont-rs", 4)]
