"""Figure 9(b) — cost saving vs deduplication ratio (16 TB weekly backups).

Paper: the saving increases with the dedup ratio and is about 70-80 % for
ratios between 10x and 50x.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.costs import sweep_dedup_ratio


def test_fig9b(benchmark):
    rows = benchmark(sweep_dedup_ratio)

    table = format_table(
        ["dedup ratio", "saving vs AONT-RS %", "saving vs single %", "CDStore $/mo"],
        [
            [
                r.dedup_ratio,
                100 * r.saving_vs_aont_rs,
                100 * r.saving_vs_single_cloud,
                r.cdstore.total_usd,
            ]
            for r in rows
        ],
        title="Figure 9(b): cost savings vs dedup ratio (16 TB weekly, 26-week retention)",
    )
    emit("fig9b", table)

    savings = [r.saving_vs_aont_rs for r in rows]
    assert savings == sorted(savings)  # monotone in the dedup ratio
    in_band = [r for r in rows if 10 <= r.dedup_ratio <= 50]
    assert all(r.saving_vs_aont_rs >= 0.70 for r in in_band)
    assert all(r.saving_vs_single_cloud >= 0.70 for r in in_band)
