"""Unit pins for the calibrated transfer model (fast versions of the
Figure 7/8 shape checks, so regressions surface in the unit suite)."""

import pytest

from repro.bench.transfer import (
    _download_clouds,
    _meta_bytes,
    _share_bytes,
    aggregate_upload_speeds,
    baseline_transfer_speeds,
    cloud_speed_table,
    trace_transfer_speeds,
)
from repro.cloud.network import MB
from repro.cloud.testbed import LOCAL_I5, LOCAL_XEON, cloud_testbed, lan_testbed
from repro.workloads import FSLWorkload, VMWorkload


class TestHelpers:
    def test_share_bytes(self):
        assert _share_bytes(3000, 3) == 1000.0

    def test_meta_bytes_is_small(self):
        # Metadata is ~0.6% of logical data at 8 KB secrets.
        assert _meta_bytes(1_000_000) < 10_000

    def test_download_clouds_pick_fastest(self):
        tb = cloud_testbed()
        chosen = [tb.clouds[i].name for i in _download_clouds(tb, 3)]
        assert "azure" in chosen and "rackspace" in chosen
        assert "amazon" not in chosen  # slowest pair loses the tie to google


class TestBaselineSpeeds:
    def test_lan_matches_paper_band(self):
        s = baseline_transfer_speeds(lan_testbed())
        assert 70 < s.upload_unique_mbps < 90      # paper 77.5
        assert 135 < s.upload_duplicate_mbps < 170  # paper 149.9
        assert 90 < s.download_mbps < 110           # paper 99.2

    def test_cloud_matches_paper_band(self):
        s = baseline_transfer_speeds(cloud_testbed())
        assert 5 < s.upload_unique_mbps < 8         # paper 6.2
        assert 45 < s.upload_duplicate_mbps < 75    # paper 57.1
        assert 10 < s.download_mbps < 15            # paper 12.3

    def test_k_affects_unique_speed(self):
        """Higher k/n ratio means less redundancy on the wire."""
        tb = lan_testbed()
        data = 1 << 30
        t_k3 = tb.upload_time(data, [data / 3] * 4, k=3)
        t_k2 = tb.upload_time(data, [data / 2] * 4, k=2)
        assert t_k3 < t_k2

    def test_xeon_model_slows_compute_bound_paths(self):
        fast = baseline_transfer_speeds(lan_testbed(model=LOCAL_I5))
        slow = baseline_transfer_speeds(lan_testbed(model=LOCAL_XEON))
        # Duplicate uploads are compute-bound: the slower machine shows it.
        assert slow.upload_duplicate_mbps < fast.upload_duplicate_mbps
        # On the Xeon, even unique uploads fall below the network bound
        # (69 MB/s chunk+encode < 82.5 MB/s k/n-link), mirroring §5.5's
        # observation that the i5 testbed was chosen for the LAN runs.
        assert slow.upload_unique_mbps <= fast.upload_unique_mbps

    def test_thread_scaling_model(self):
        one = lan_testbed(model=LOCAL_I5.scaled_threads(1))
        four = lan_testbed(model=LOCAL_I5.scaled_threads(4))
        s1 = baseline_transfer_speeds(one)
        s4 = baseline_transfer_speeds(four)
        assert s4.upload_duplicate_mbps > 1.5 * s1.upload_duplicate_mbps


class TestTable2:
    def test_speeds_below_raw_bandwidth(self):
        """Per-unit request latency keeps measured speeds under the link
        rate, as in a real measurement."""
        for row in cloud_speed_table(cloud_testbed()):
            from repro.cloud.testbed import CLOUD_LINKS

            up, down = CLOUD_LINKS[row.cloud]
            assert row.upload_mbps < up
            assert row.download_mbps < down


class TestAggregate:
    def test_single_client_matches_baseline(self):
        tb = lan_testbed()
        row = aggregate_upload_speeds(tb, client_counts=(1,))[0]
        baseline = baseline_transfer_speeds(tb)
        assert row.unique_mbps == pytest.approx(baseline.upload_unique_mbps, rel=0.01)

    def test_dup_knee_position(self):
        rows = {r.clients: r for r in aggregate_upload_speeds(lan_testbed())}
        # Linear until ~3 clients, flat after 4 (server CPU saturation).
        assert rows[3].duplicate_mbps == pytest.approx(3 * rows[1].duplicate_mbps, rel=0.02)
        assert rows[8].duplicate_mbps == pytest.approx(rows[4].duplicate_mbps, rel=0.02)


class TestTraceDriven:
    def test_vm_workload_trace(self):
        """The trace driver accepts any Workload, not just FSL."""
        workload = VMWorkload(users=3, weeks=2, master_chunks=100)
        s = trace_transfer_speeds(lan_testbed(), workload, users=3, weeks=2)
        assert s.upload_first_mbps > 0
        assert s.upload_subsequent_mbps > s.upload_first_mbps * 0.5

    def test_fragmentation_slows_downloads(self):
        workload = FSLWorkload(users=2, weeks=3, chunks_per_user=150)
        slow = trace_transfer_speeds(
            lan_testbed(), workload, users=2, weeks=3, fragmentation=0.3
        )
        workload2 = FSLWorkload(users=2, weeks=3, chunks_per_user=150)
        fast = trace_transfer_speeds(
            lan_testbed(), workload2, users=2, weeks=3, fragmentation=0.0
        )
        assert slow.download_mbps < fast.download_mbps


class TestClientUploadWalltime:
    """§4.6: a threaded client's wall-clock is the per-cloud makespan."""

    def test_parallel_is_makespan_serial_is_sum(self):
        from repro.bench.transfer import client_upload_walltime

        clouds = cloud_testbed().clouds
        wire = [50 * MB] * len(clouds)
        serial = client_upload_walltime(clouds, wire, threads=1)
        parallel = client_upload_walltime(clouds, wire, threads=4)
        batches = -(-int(50 * MB) // (4 << 20))  # 4 MB units, §4.1
        per_cloud = [
            cloud.uplink.transfer_time(int(50 * MB), batches=batches)
            for cloud in clouds
        ]
        assert serial == pytest.approx(sum(per_cloud))
        assert parallel == pytest.approx(max(per_cloud))
        assert parallel < serial

    def test_matches_comm_engine_accounting(self):
        """The model helper and the live engine charge identical time."""
        from repro.bench.transfer import client_upload_walltime
        from repro.chunking.fixed import FixedChunker
        from repro.cloud.network import Link, SimClock
        from repro.cloud.provider import CloudProvider
        from repro.system.cdstore import CDStoreSystem

        clouds = [
            CloudProvider(name=f"c{i}", uplink=Link(bw), downlink=Link(bw))
            for i, bw in enumerate([5.0, 10.0, 20.0, 40.0])
        ]
        clock = SimClock()
        system = CDStoreSystem(
            n=4, k=3, salt=b"org", clouds=clouds, threads=4, clock=clock
        )
        client = system.client("alice", chunker=FixedChunker(4096))
        receipt = client.upload("/f", b"x" * 120_000)
        assert receipt.sim_seconds == pytest.approx(
            client_upload_walltime(clouds, receipt.wire_bytes_per_cloud, threads=4)
        )
        # A fully-deduplicated re-upload (zero wire bytes) must agree too.
        dup = client.upload("/f-again", b"x" * 120_000)
        assert dup.transferred_share_bytes == 0
        assert dup.sim_seconds == pytest.approx(
            client_upload_walltime(clouds, dup.wire_bytes_per_cloud, threads=4)
        )
        system.close()
