"""The CDStore server (§4.1, §4.3-4.5).

One server runs in each cloud's co-locating VM.  It performs inter-user
deduplication on incoming shares, maintains the file and share indices
(backed by the LSM store, the LevelDB stand-in), manages containers at the
cloud's storage backend, and serves restores.
"""

from repro.server.index import DictIndex, IndexBackend, LSMIndex
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer

__all__ = [
    "CDStoreServer",
    "DictIndex",
    "FileManifest",
    "IndexBackend",
    "LSMIndex",
    "RecipeEntry",
    "ShareMeta",
    "ShareUpload",
]
