"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), prints the same rows/series the paper
reports, and writes a copy under ``benchmarks/out/`` so results survive
pytest's output capture.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to watch the tables print live.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/out/<name>.txt."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
