"""Multi-tenant serving: the auth handshake, tenant scoping, quotas.

Real loopback sockets throughout — the handshake, the per-frame tenant
pinning, the admin-role gate, owner-scoped fetches and the typed quota
errors are all exercised over the wire, exactly as a deployment sees
them.  Raw-socket tests drive the frames by hand where the proxy (which
only ever does the right thing) cannot express the attack.
"""

from __future__ import annotations

import hashlib
import os
import socket
from contextlib import closing

import pytest

from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.crypto.hashing import fingerprint
from repro.errors import AuthError, NotFoundError, QuotaExceededError
from repro.net import CDStoreTCPServer, RemoteServerProxy, wire
from repro.net.server import recv_exact
from repro.server.messages import FileManifest, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer
from repro.tenants import (
    ROLE_ADMIN,
    Credentials,
    TenantQuota,
    TenantRecord,
    TenantRegistry,
    auth_proof,
)

SECRETS = {
    "alice": b"alice-secret",
    "bob": b"bob-secret",
    "root": b"root-secret",
    "drip": b"drip-secret",
    "small": b"small-secret",
}


def make_registry() -> TenantRegistry:
    return TenantRegistry(
        [
            TenantRecord("alice", SECRETS["alice"]),
            TenantRecord("bob", SECRETS["bob"]),
            TenantRecord("root", SECRETS["root"], role=ROLE_ADMIN),
            TenantRecord(
                "drip",
                SECRETS["drip"],
                quota=TenantQuota(max_requests_per_sec=0.001),
            ),
            TenantRecord(
                "small", SECRETS["small"], quota=TenantQuota(max_bytes=6000)
            ),
        ]
    )


@pytest.fixture
def served():
    """One in-memory tenant-aware server behind a loopback TCP server."""
    registry = make_registry()
    server = CDStoreServer(
        server_id=0,
        cloud=CloudProvider("cloud-0", Link(100.0), Link(100.0)),
        tenants=registry,
    )
    tcp = CDStoreTCPServer(server, tenants=registry).start()
    try:
        yield server, tcp
    finally:
        tcp.shutdown()


def proxy_for(tcp, tenant: str | None = None, secret: bytes | None = None):
    creds = None
    if tenant is not None:
        creds = Credentials(tenant, secret or SECRETS[tenant])
    host, port = tcp.address
    return RemoteServerProxy(f"tcp://{host}:{port}", credentials=creds)


def make_upload(data: bytes) -> ShareUpload:
    meta = ShareMeta(
        fingerprint=hashlib.sha256(b"client:" + data).digest(),
        share_size=len(data),
        secret_seq=0,
        secret_size=len(data),
    )
    return ShareUpload(meta=meta, data=data)


def store_file(proxy, user: str, name: bytes, data: bytes) -> bytes:
    """Upload + finalize one single-share file; returns the server fp.

    Follows the client protocol: query first, upload only what the user
    has not stored before (two-stage dedup), then finalize.
    """
    upload = make_upload(data)
    if not proxy.query_duplicates(user, [upload.meta.fingerprint])[0]:
        proxy.upload_shares(user, [upload])
    manifest = FileManifest(
        lookup_key=name, path_share=b"", file_size=len(data), secret_count=1
    )
    proxy.finalize_file(user, manifest, [upload.meta])
    return fingerprint(data, domain="server")


# ---------------------------------------------------------------------------
# raw frame access (for what the well-behaved proxy cannot express)
# ---------------------------------------------------------------------------


def _call(sock: socket.socket, frame_type: int, payload: bytes = b""):
    sock.sendall(wire.encode_frame(frame_type, payload))
    return wire.read_frame(lambda n: recv_exact(sock, n), wire.MAX_FRAME_BYTES)


def _connect(tcp) -> socket.socket:
    return socket.create_connection(tcp.address, timeout=10)


# ---------------------------------------------------------------------------
# the handshake
# ---------------------------------------------------------------------------


class TestHandshake:
    def test_valid_credentials_authenticate(self, served):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            assert proxy.list_files("alice") == []
            assert proxy.role == "tenant"

    def test_admin_role_is_reported(self, served):
        _server, tcp = served
        with proxy_for(tcp, "root") as proxy:
            assert proxy.scrub() == []
            assert proxy.role == ROLE_ADMIN

    def test_ping_needs_no_credentials(self, served):
        _server, tcp = served
        with proxy_for(tcp) as proxy:
            assert proxy.ping()

    def test_ping_with_bad_credentials_is_an_auth_error_not_an_outage(
        self, served
    ):
        """A live server rejecting the secret must not read as unreachable
        — that answer sends the operator debugging the network instead of
        their credentials (and `InsufficientCloudsError` would bury the
        cause entirely)."""
        _server, tcp = served
        with proxy_for(tcp, "alice", secret=b"wrong") as proxy:
            with pytest.raises(AuthError):
                proxy.ping()

    def test_requests_require_auth(self, served):
        _server, tcp = served
        with proxy_for(tcp) as proxy:
            with pytest.raises(AuthError, match="authentication required"):
                proxy.list_files("alice")

    def test_bad_secret_is_rejected(self, served):
        _server, tcp = served
        with proxy_for(tcp, "alice", secret=b"guessed") as proxy:
            with pytest.raises(AuthError) as wrong_secret:
                proxy.list_files("alice")
        # An unknown tenant gets byte-identical treatment: same message,
        # so the error is not an existence oracle for tenant ids.
        with proxy_for(tcp, "mallory", secret=b"whatever") as proxy:
            with pytest.raises(AuthError) as unknown_tenant:
                proxy.list_files("mallory")
        assert str(wrong_secret.value) == str(unknown_tenant.value)

    def test_proxy_reauthenticates_after_reconnect(self, served):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            assert proxy.list_files("alice") == []
            proxy.close()  # drop the socket; next call redials
            assert proxy.list_files("alice") == []
            assert proxy.role == "tenant"

    def test_replayed_proof_is_rejected(self, served):
        """A captured proof is useless: the server nonce is fresh per
        attempt, so the HMAC never verifies against a new challenge."""
        _server, tcp = served
        client_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        with closing(_connect(tcp)) as s1:
            frame_type, payload = _call(
                s1, wire.T_AUTH, wire.encode_auth("alice", client_nonce)
            )
            assert frame_type == wire.R_AUTH_CHALLENGE
            nonce1 = wire.decode_auth_challenge(payload)
            proof = auth_proof(SECRETS["alice"], "alice", client_nonce, nonce1)
            frame_type, _ = _call(
                s1, wire.T_AUTH_PROOF, wire.encode_auth_proof(proof)
            )
            assert frame_type == wire.R_AUTH_OK

        with closing(_connect(tcp)) as s2:
            frame_type, payload = _call(
                s2, wire.T_AUTH, wire.encode_auth("alice", client_nonce)
            )
            nonce2 = wire.decode_auth_challenge(payload)
            assert nonce2 != nonce1
            frame_type, payload = _call(
                s2, wire.T_AUTH_PROOF, wire.encode_auth_proof(proof)
            )
            assert frame_type == wire.R_ERROR
            assert isinstance(wire.decode_error(payload), AuthError)

    def test_failed_proof_consumes_the_challenge(self, served):
        """One challenge, one attempt: after a bad proof even the correct
        one is refused until the handshake restarts."""
        _server, tcp = served
        client_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        with closing(_connect(tcp)) as sock:
            _, payload = _call(
                sock, wire.T_AUTH, wire.encode_auth("alice", client_nonce)
            )
            server_nonce = wire.decode_auth_challenge(payload)
            frame_type, _ = _call(
                sock, wire.T_AUTH_PROOF, wire.encode_auth_proof(b"\x00" * 32)
            )
            assert frame_type == wire.R_ERROR
            correct = auth_proof(
                SECRETS["alice"], "alice", client_nonce, server_nonce
            )
            frame_type, payload = _call(
                sock, wire.T_AUTH_PROOF, wire.encode_auth_proof(correct)
            )
            assert frame_type == wire.R_ERROR
            assert isinstance(wire.decode_error(payload), AuthError)

    def test_proof_is_bound_to_the_claimed_tenant(self, served):
        """bob's secret proving a claim for alice's id never verifies."""
        _server, tcp = served
        client_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        with closing(_connect(tcp)) as sock:
            _, payload = _call(
                sock, wire.T_AUTH, wire.encode_auth("alice", client_nonce)
            )
            server_nonce = wire.decode_auth_challenge(payload)
            forged = auth_proof(
                SECRETS["bob"], "alice", client_nonce, server_nonce
            )
            frame_type, payload = _call(
                sock, wire.T_AUTH_PROOF, wire.encode_auth_proof(forged)
            )
            assert frame_type == wire.R_ERROR
            assert isinstance(wire.decode_error(payload), AuthError)


# ---------------------------------------------------------------------------
# tenant pinning: every user_id-bearing frame
# ---------------------------------------------------------------------------

MISMATCH_OPS = [
    ("query_duplicates", lambda p: p.query_duplicates("bob", [])),
    ("upload_shares", lambda p: p.upload_shares("bob", [])),
    (
        "finalize_file",
        lambda p: p.finalize_file("bob", FileManifest(b"k", b"", 0, 0), []),
    ),
    ("get_file_entry", lambda p: p.get_file_entry("bob", b"k")),
    ("get_recipe", lambda p: p.get_recipe("bob", b"k")),
    ("list_files", lambda p: p.list_files("bob")),
    ("delete_file", lambda p: p.delete_file("bob", b"k")),
]


class TestTenantPinning:
    @pytest.mark.parametrize("op", [op for _, op in MISMATCH_OPS],
                             ids=[name for name, _ in MISMATCH_OPS])
    def test_foreign_user_id_is_rejected(self, served, op):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            with pytest.raises(AuthError, match="does not match"):
                op(proxy)

    def test_own_user_id_is_allowed(self, served):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            assert proxy.query_duplicates("alice", []) == []

    def test_admin_may_name_any_user(self, served):
        _server, tcp = served
        with proxy_for(tcp, "root") as proxy:
            assert proxy.list_files("bob") == []


# ---------------------------------------------------------------------------
# the admin frame set
# ---------------------------------------------------------------------------

ADMIN_OPS = [
    ("scrub", lambda p: p.scrub()),
    ("collect_garbage", lambda p: p.collect_garbage()),
    ("list_backups", lambda p: p.list_backups()),
    ("stats", lambda p: p.stats),
    ("stored_bytes", lambda p: p.stored_bytes),
    ("replace_share", lambda p: p.replace_share(b"\x01" * 32, b"d")),
    (
        "rebuild_recipe",
        lambda p: p.rebuild_recipe("alice", b"k", []),
    ),
]


class TestAdminFrames:
    @pytest.mark.parametrize("op", [op for _, op in ADMIN_OPS],
                             ids=[name for name, _ in ADMIN_OPS])
    def test_reserved_to_admin_role(self, served, op):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            with pytest.raises(AuthError, match="administrator role"):
                op(proxy)

    def test_admin_passes(self, served):
        _server, tcp = served
        with proxy_for(tcp, "root") as proxy:
            assert proxy.collect_garbage() == 0
            assert proxy.list_backups() == []
            assert proxy.stored_bytes == 0

    def test_flush_is_open_to_any_tenant(self, served):
        _server, tcp = served
        with proxy_for(tcp, "alice") as proxy:
            proxy.flush()  # only makes buffered writes durable


# ---------------------------------------------------------------------------
# owner-scoped share fetches
# ---------------------------------------------------------------------------


class TestOwnerScoping:
    def test_tenants_cannot_fetch_or_probe_foreign_shares(self, served):
        _server, tcp = served
        data = b"bob-owned-share-data" * 100
        with proxy_for(tcp, "bob") as bob:
            server_fp = store_file(bob, "bob", b"bobs-file", data)
            assert bob.fetch_shares([server_fp]) == {server_fp: data}

        with proxy_for(tcp, "alice") as alice:
            # Another tenant's share answers exactly like one that was
            # never stored: not-found, not forbidden.
            with pytest.raises(NotFoundError):
                alice.fetch_shares([server_fp])
            with pytest.raises(NotFoundError):
                alice.fetch_shares([b"\x02" * 32])

        with proxy_for(tcp, "root") as root:
            assert root.fetch_shares([server_fp]) == {server_fp: data}


# ---------------------------------------------------------------------------
# rate limiting and byte quotas, over the wire
# ---------------------------------------------------------------------------


class TestQuotas:
    def test_rate_limit_is_typed_and_survives_reconnect(self, served):
        """drip's bucket holds one token refilling at 1/1000s: the second
        request trips the limit, and redialling (which re-authenticates)
        does not buy a fresh bucket — it is per tenant, not per socket."""
        _server, tcp = served
        with proxy_for(tcp, "drip") as proxy:
            assert proxy.list_files("drip") == []
            with pytest.raises(QuotaExceededError, match="rate limit"):
                proxy.list_files("drip")
            proxy.close()
            with pytest.raises(QuotaExceededError, match="rate limit"):
                proxy.list_files("drip")

    def test_byte_quota_accounts_across_reconnects(self, served):
        server, tcp = served
        first = os.urandom(4096)
        with proxy_for(tcp, "small") as proxy:
            store_file(proxy, "small", b"f1", first)
        assert server.tenant_usage("small").bytes_stored == 4096

        # A fresh connection (fresh handshake) sees the same durable
        # ledger: the next 4 KiB would exceed max_bytes=6000.
        with proxy_for(tcp, "small") as proxy:
            with pytest.raises(QuotaExceededError, match="quota"):
                proxy.upload_shares("small", [make_upload(os.urandom(4096))])
        assert server.tenant_usage("small").bytes_stored == 4096

    def test_intra_tenant_dedup_is_free(self, served):
        server, tcp = served
        data = os.urandom(4096)
        with proxy_for(tcp, "small") as proxy:
            store_file(proxy, "small", b"f1", data)
            # The same share under a second name re-references, not
            # re-stores: no new charge, no quota trip.
            store_file(proxy, "small", b"f2", data)
        assert server.tenant_usage("small").bytes_stored == 4096


# ---------------------------------------------------------------------------
# open mode: no registry, no handshake
# ---------------------------------------------------------------------------


def test_open_mode_stays_open():
    server = CDStoreServer(
        server_id=0, cloud=CloudProvider("cloud-0", Link(100.0), Link(100.0))
    )
    with CDStoreTCPServer(server) as tcp:
        with proxy_for(tcp) as proxy:
            assert proxy.query_duplicates("anyone", []) == []
            assert proxy.scrub() == []
            assert proxy.role is None
