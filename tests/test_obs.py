"""The observability subsystem: registry, tracing, wire frame, e2e.

Bottom-up: metric semantics (bucket boundaries, label sets, the enabled
kill switch), registry thread-safety under concurrent writers (one CI
tier-1 leg replays this under the lock witness), span rings and the
slow-request log, the ``OBS_STATS`` codec, admin gating of the wire
frame — then the acceptance path: one ``download()`` through a live
async gateway deployment leaves the *same* trace id in the client,
gateway and replica span rings, while v1 and trace-less v2 peers
interoperate byte-identically with no server-side spans at all.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.errors import AuthError, ParameterError, ProtocolError
from repro.gateway import GatewayService
from repro.net import AsyncCDStoreTCPServer, CDStoreTCPServer, RemoteServerProxy, wire
from repro.obs.log import StructuredLog
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SNAPSHOT_VERSION,
    render_prometheus,
)
from repro.obs.trace import (
    ZERO_TRACE_ID,
    Span,
    SpanRecorder,
    Tracer,
    current_context,
    use_context,
)
from repro.server.server import CDStoreServer
from repro.tenants import Credentials, TenantRecord, TenantRegistry


def make_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(100.0), Link(100.0)),
        )
        for i in range(n)
    ]


def payload(size: int, seed: int = 7) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "help")
        c.inc()
        c.inc(2)
        c.inc(tenant="alice")
        assert c.value() == 3
        assert c.value(tenant="alice") == 1
        assert c.collect() == {"": 3, "tenant=alice": 1}

    def test_label_key_is_order_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.collect() == {"a=1,b=2": 2}

    def test_registration_is_idempotent_but_kind_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("dual")
        assert reg.counter("dual") is c
        with pytest.raises(ParameterError, match="already registered"):
            reg.gauge("dual")

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("off_total")
        c.inc(100)
        assert c.value() == 0
        reg.enabled = True
        c.inc()
        assert c.value() == 1


class TestGauge:
    def test_set_add_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10, server="0")
        g.inc(server="0")
        g.dec(4, server="0")
        assert g.value(server="0") == 7
        assert g.value(server="1") == 0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.001, 0.01, 0.1))
        h.observe(0.001)  # == bound 0: lands in bucket 0
        h.observe(0.0011)  # just past: bucket 1
        h.observe(0.1)  # == last finite bound: bucket 2
        h.observe(5.0)  # past every bound: +Inf
        assert h.counts() == [1, 1, 1, 1]
        assert h.observations() == 4
        series = h.collect()[""]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(0.001 + 0.0011 + 0.1 + 5.0)
        assert series["buckets"] == [0.001, 0.01, 0.1]

    def test_default_buckets_cover_fsync_to_restore_scales(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0005
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError, match="sorted"):
            reg.histogram("bad_seconds", buckets=(1.0, 0.5))


class TestRegistryConcurrency:
    def test_concurrent_writers_lose_nothing(self):
        """8 writer threads on one counter + histogram; exact totals.

        The per-thread-cell fast path must neither drop increments nor
        double-count when snapshots run concurrently.  A CI tier-1 leg
        replays this under REPRO_LOCK_WITNESS=1, which also proves the
        registry's internal locks cannot ABBA-deadlock.
        """
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        h = reg.histogram("work_seconds", buckets=(0.5, 1.0))
        snapshots: list[dict] = []

        def writer():
            for _ in range(5_000):
                c.inc()
                h.observe(0.25)

        def reader():
            for _ in range(50):
                snapshots.append(reg.snapshot())

        threads = [threading.Thread(target=writer) for _ in range(8)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 40_000
        assert h.observations() == 40_000
        assert h.counts() == [40_000, 0, 0]
        # Mid-flight snapshots are consistent prefixes, never overshoots.
        for snap in snapshots:
            seen = snap["counters"]["hits_total"].get("", 0)
            assert 0 <= seen <= 40_000


class TestSnapshotAndPrometheus:
    def make_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "requests").inc(3, frame="PING")
        reg.gauge("conns", "connections").set(2)
        reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
        return reg, reg.snapshot()

    def test_snapshot_is_versioned_and_json_safe(self):
        _reg, snap = self.make_snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        decoded = json.loads(json.dumps(snap))
        assert decoded["counters"]["reqs_total"] == {"frame=PING": 3}
        assert decoded["gauges"]["conns"] == {"": 2}
        hist = decoded["histograms"]["lat_seconds"][""]
        assert hist["counts"] == [1, 0, 0]

    def test_prometheus_rendering_from_registry_and_from_snapshot(self):
        reg, snap = self.make_snapshot()
        text = reg.render_prometheus()
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{frame="PING"} 3' in text
        assert "conns 2" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        # The module function renders a *decoded remote* snapshot too
        # (repro stats --prom against a live server has no registry).
        remote = render_prometheus(json.loads(json.dumps(snap)))
        assert 'reqs_total{frame="PING"} 3' in remote
        assert "# HELP" not in remote  # help texts don't cross the wire


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def make_span(self, i: int) -> Span:
        return Span(
            trace_id=f"{i:032x}", span_id=i + 1, parent_id=0,
            component="t", name=f"s{i}", start=0.0, duration=0.0,
        )

    def test_ring_is_bounded_and_drops_oldest(self):
        ring = SpanRecorder(capacity=8)
        for i in range(20):
            ring.record(self.make_span(i))
        assert len(ring) == 8
        names = [s.name for s in ring.spans()]
        assert names == [f"s{i}" for i in range(12, 20)]

    def test_for_trace_filters(self):
        ring = SpanRecorder()
        ring.record(self.make_span(1))
        ring.record(self.make_span(2))
        assert [s.span_id for s in ring.for_trace(f"{1:032x}")] == [2]


class TestTracer:
    def test_root_span_mints_and_nested_inherits(self):
        tracer = Tracer("client", slow_threshold=None)
        with tracer.span("outer", root=True) as tid:
            assert tid != ZERO_TRACE_ID
            assert current_context()[0] == tid
            with tracer.span("inner"):
                pass
        assert current_context() == (ZERO_TRACE_ID, 0)
        by_name = {s.name: s for s in tracer.recorder.spans()}
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == 0

    def test_untraced_non_root_span_is_dropped(self):
        tracer = Tracer("server", slow_threshold=None)
        with tracer.span("frame:PING"):
            pass
        assert len(tracer.recorder) == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer("client", enabled=False)
        with tracer.span("upload", root=True) as tid:
            assert tid is None
        assert len(tracer.recorder) == 0

    def test_slow_span_emits_structured_log_and_counter(self):
        sink = io.StringIO()
        tracer = Tracer(
            "gateway",
            slow_threshold=0.0,
            slow_log=StructuredLog(stream=sink, json_lines=True),
        )
        before = tracer.recorder
        with tracer.span("frame:GW_WINDOW", root=True, window=3) as tid:
            pass
        event = json.loads(sink.getvalue())
        assert event["event"] == "slow_request"
        assert event["component"] == "gateway"
        assert event["name"] == "frame:GW_WINDOW"
        assert event["trace_id"] == tid.hex()
        assert event["window"] == 3
        assert event["duration_seconds"] >= 0.0
        assert before.spans()[-1].labels == {"window": 3}

    def test_fast_span_stays_silent(self):
        sink = io.StringIO()
        tracer = Tracer(
            "client",
            slow_threshold=60.0,
            slow_log=StructuredLog(stream=sink, json_lines=True),
        )
        with tracer.span("download", root=True):
            pass
        assert sink.getvalue() == ""

    def test_use_context_carries_across_threads(self):
        """The comm-engine pattern: capture on submit, activate in worker."""
        tracer = Tracer("client", slow_threshold=None)
        seen = {}

        with tracer.span("upload", root=True) as tid:
            ctx = current_context()

            def worker():
                with use_context(*ctx):
                    with tracer.span("encode"):
                        seen["ctx"] = current_context()

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["ctx"][0] == tid
        spans = {s.name: s for s in tracer.recorder.spans()}
        assert spans["encode"].trace_id == spans["upload"].trace_id


# ---------------------------------------------------------------------------
# OBS_STATS codec
# ---------------------------------------------------------------------------


class TestObsStatsCodec:
    def test_round_trip(self):
        snap = {"version": 1, "counters": {"x_total": {"": 2}}}
        assert wire.decode_obs_stats(wire.encode_obs_stats(snap)) == snap

    def test_encode_requires_version(self):
        with pytest.raises(ProtocolError, match="version"):
            wire.encode_obs_stats({"counters": {}})

    def test_decode_rejects_garbage_and_unversioned(self):
        with pytest.raises(ProtocolError):
            wire.decode_obs_stats(b"\xff\xfe not json")
        with pytest.raises(ProtocolError, match="versioned"):
            wire.decode_obs_stats(b'{"counters": {}}')
        with pytest.raises(ProtocolError, match="versioned"):
            wire.decode_obs_stats(b'[1, 2]')


# ---------------------------------------------------------------------------
# wire surface: admin gating + stats over a live socket
# ---------------------------------------------------------------------------


class TestObsStatsWire:
    def test_open_server_serves_obs_stats(self):
        server = make_servers(1)[0]
        tcp = CDStoreTCPServer(server).start()
        proxy = RemoteServerProxy(
            f"tcp://{tcp.address[0]}:{tcp.address[1]}", server_id=0
        )
        try:
            assert proxy.ping()
            snap = proxy.obs_stats()
            assert snap["version"] == SNAPSHOT_VERSION
            assert snap["component"] == "server"
            assert snap["server_id"] == 0
            assert "spans" in snap
            # The dispatcher's own histogram observed this very request.
            assert "net_dispatch_seconds" in snap["histograms"]
        finally:
            proxy.close()
            tcp.shutdown()
            server.close()

    def test_obs_stats_needs_admin_role(self):
        registry = TenantRegistry([
            TenantRecord("alice", b"alice-secret"),
            TenantRecord("ops", b"ops-secret", role="admin"),
        ])
        server = make_servers(1)[0]
        tcp = CDStoreTCPServer(server, tenants=registry).start()
        address = f"tcp://{tcp.address[0]}:{tcp.address[1]}"
        alice = RemoteServerProxy(
            address, server_id=0,
            credentials=Credentials("alice", b"alice-secret"),
        )
        ops = RemoteServerProxy(
            address, server_id=0,
            credentials=Credentials("ops", b"ops-secret"),
        )
        try:
            with pytest.raises(AuthError, match="administrator"):
                alice.obs_stats()
            snap = ops.obs_stats()
            assert snap["component"] == "server"
        finally:
            alice.close()
            ops.close()
            tcp.shutdown()
            server.close()


# ---------------------------------------------------------------------------
# end-to-end trace propagation (the acceptance path)
# ---------------------------------------------------------------------------


@pytest.fixture
def traced_deployment():
    """Four async-served replicas behind an async gateway front-end,
    driven by a client whose direct path also goes over the wire."""
    servers = make_servers(4)
    fronts = [AsyncCDStoreTCPServer(server).start() for server in servers]
    addresses = [f"tcp://{f.address[0]}:{f.address[1]}" for f in fronts]
    client_proxies = [
        RemoteServerProxy(addr, server_id=i) for i, addr in enumerate(addresses)
    ]
    gw_replicas = [
        RemoteServerProxy(addr, server_id=i) for i, addr in enumerate(addresses)
    ]
    service = GatewayService(
        gw_replicas, k=3, window_bytes=16_384, own_replicas=True
    )
    gw_front = AsyncCDStoreTCPServer(None, gateway=service).start()
    gw_proxy = RemoteServerProxy(
        f"tcp://{gw_front.address[0]}:{gw_front.address[1]}",
        server_id=wire.GATEWAY_SERVER_ID,
    )
    client = CDStoreClient(
        user_id="alice", servers=client_proxies, k=3, salt=b"org",
        chunker=FixedChunker(4096), gateway=gw_proxy,
    )
    try:
        yield client, fronts, gw_front
    finally:
        gw_proxy.close()
        for proxy in client_proxies:
            proxy.close()
        gw_front.shutdown()
        service.close()  # closes gw_replicas (own_replicas)
        for front in fronts:
            front.shutdown()
        for server in servers:
            server.close()


class TestTraceE2E:
    def test_one_trace_id_spans_client_gateway_and_replicas(
        self, traced_deployment
    ):
        """Acceptance: a single gateway download leaves one trace id in
        the client, gateway *and* replica span rings."""
        client, fronts, gw_front = traced_deployment
        data = payload(100_000)
        client.upload("f", data)
        client.flush()
        assert client.download("f") == data

        download = next(
            s for s in client.spans.spans() if s.name == "download"
        )
        tid = download.trace_id

        gw_spans = gw_front.spans.for_trace(tid)
        assert gw_spans, "gateway ring is missing the download's trace"
        assert {s.name for s in gw_spans} >= {
            "frame:GW_RESOLVE", "frame:GW_WINDOW"
        }
        assert all(s.component == "gateway" for s in gw_spans)

        replica_spans = [
            span for front in fronts for span in front.spans.for_trace(tid)
        ]
        assert replica_spans, "no replica ring saw the download's trace"
        assert all(s.component == "server" for s in replica_spans)
        # The gateway's replica calls parent into the gateway's handler
        # spans, stitching the cross-process tree together.
        gw_span_ids = {s.span_id for s in gw_spans}
        assert any(s.parent_id in gw_span_ids for s in replica_spans)

    def test_upload_trace_reaches_replicas_directly(self, traced_deployment):
        client, fronts, _gw_front = traced_deployment
        client.upload("g", payload(50_000, seed=3))
        client.flush()
        upload = next(s for s in client.spans.spans() if s.name == "upload")
        touched = [
            front for front in fronts if front.spans.for_trace(upload.trace_id)
        ]
        assert len(touched) == len(fronts), (
            "every replica ingests shares, so every ring must see the trace"
        )


class TestTraceInterop:
    """Old peers keep working and simply record no server-side spans."""

    def run_backup_restore(self, **proxy_kwargs):
        servers = make_servers(4)
        tcps = [CDStoreTCPServer(server).start() for server in servers]
        proxies = [
            RemoteServerProxy(
                f"tcp://{t.address[0]}:{t.address[1]}",
                server_id=i, **proxy_kwargs,
            )
            for i, t in enumerate(tcps)
        ]
        client = CDStoreClient(
            user_id="alice", servers=proxies, k=3, salt=b"org",
            chunker=FixedChunker(4096),
        )
        data = payload(60_000, seed=9)
        try:
            client.upload("f", data)
            client.flush()
            assert client.download("f") == data
            return client, [t.spans for t in tcps]
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()
            for server in servers:
                server.close()

    def test_v1_serial_peer_has_no_trace_extension(self):
        client, rings = self.run_backup_restore(mux=False)
        assert len(client.spans) > 0  # client-side tracing still works
        assert all(len(ring) == 0 for ring in rings)

    def test_v2_peer_without_trace_flag_negotiates_it_off(self):
        client, rings = self.run_backup_restore(trace=False)
        assert len(client.spans) > 0
        assert all(len(ring) == 0 for ring in rings)
