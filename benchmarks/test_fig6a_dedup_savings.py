"""Figure 6(a) — intra-user and inter-user deduplication savings per week.

Paper (FSL): intra-user savings ≥ 94.2 % for subsequent backups; inter-user
savings ≤ 12.9 %.  Paper (VM): first-week inter-user saving 93.4 % (images
cloned from one master), subsequent weeks 11.8-47.0 %, intra ≥ 98 %.
"""

from conftest import emit

from repro.bench.dedup import simulate_two_stage
from repro.bench.reporting import format_table
from repro.workloads import FSLWorkload, VMWorkload


def test_fig6a_fsl(benchmark):
    workload = FSLWorkload(chunks_per_user=800)
    rows = benchmark.pedantic(simulate_two_stage, args=(workload,), rounds=1, iterations=1)

    table = format_table(
        ["week", "intra-user saving %", "inter-user saving %"],
        [[r.week, 100 * r.intra_saving, 100 * r.inter_saving] for r in rows],
        title="Figure 6(a) FSL: weekly dedup savings, (n, k)=(4, 3)",
    )
    emit("fig6a_fsl", table)

    assert all(r.intra_saving >= 0.94 for r in rows[1:])
    assert all(r.inter_saving <= 0.15 for r in rows)


def test_fig6a_vm(benchmark):
    workload = VMWorkload(users=60, master_chunks=1500)
    rows = benchmark.pedantic(simulate_two_stage, args=(workload,), rounds=1, iterations=1)

    table = format_table(
        ["week", "intra-user saving %", "inter-user saving %"],
        [[r.week, 100 * r.intra_saving, 100 * r.inter_saving] for r in rows],
        title="Figure 6(a) VM: weekly dedup savings, (n, k)=(4, 3)",
    )
    emit("fig6a_vm", table)

    assert rows[0].inter_saving > 0.88  # cloned master images
    assert all(r.intra_saving >= 0.97 for r in rows[1:])
    assert all(0.10 <= r.inter_saving <= 0.55 for r in rows[1:])
