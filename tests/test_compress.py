"""Compression substrate: LZSS, Huffman, composed codec, recipes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.codec import compress, compress_recipe, decompress, decompress_recipe
from repro.compress.huffman import huffman_decode, huffman_encode
from repro.compress.lzss import lzss_compress, lzss_decompress
from repro.crypto.drbg import DRBG
from repro.errors import ParameterError


class TestLZSS:
    @settings(max_examples=50)
    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip(self, data):
        assert lzss_decompress(lzss_compress(data)) == data

    def test_repetitive_data_shrinks(self):
        data = b"abcdefgh" * 500
        assert len(lzss_compress(data)) < len(data) / 3

    def test_random_data_bounded_expansion(self):
        data = DRBG("incompressible").random_bytes(4096)
        assert len(lzss_compress(data)) < len(data) * 1.15

    def test_expected_size_validation(self):
        blob = lzss_compress(b"hello world")
        assert lzss_decompress(blob, expected_size=11) == b"hello world"
        with pytest.raises(ParameterError):
            lzss_decompress(blob, expected_size=99)

    def test_corrupt_reference_detected(self):
        # A reference pointing before the start of output is rejected.
        blob = bytes([0b00000001, 0xFF, 0xFF])
        with pytest.raises(ParameterError):
            lzss_decompress(blob)

    def test_truncated_reference_detected(self):
        blob = bytes([0b00000001, 0x10])
        with pytest.raises(ParameterError):
            lzss_decompress(blob)

    def test_overlapping_match(self):
        # Classic LZ run: "aaaa..." requires self-overlapping copies.
        data = b"a" * 300
        assert lzss_decompress(lzss_compress(data)) == data


class TestHuffman:
    @settings(max_examples=50)
    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip(self, data):
        assert huffman_decode(huffman_encode(data)) == data

    def test_skewed_data_shrinks(self):
        data = b"\x00" * 900 + bytes(range(100))
        assert len(huffman_encode(data)) < len(data) * 0.6

    def test_single_symbol(self):
        data = b"z" * 100
        assert huffman_decode(huffman_encode(data)) == data

    def test_truncated_header_raises(self):
        with pytest.raises(ParameterError):
            huffman_decode(b"\x00\x00")
        with pytest.raises(ParameterError):
            huffman_decode((100).to_bytes(4, "big") + b"\x01" * 10)

    def test_stream_ending_early_raises(self):
        blob = huffman_encode(b"some data here")
        with pytest.raises(ParameterError):
            huffman_decode(blob[:-2])


class TestComposedCodec:
    @settings(max_examples=30)
    @given(st.binary(min_size=0, max_size=1500))
    def test_roundtrip(self, data):
        assert decompress(compress(data)) == data

    @pytest.mark.parametrize("method", ["stored", "lzss", "lzss+huffman", "auto"])
    def test_all_methods(self, method):
        data = b"recipe entry " * 100
        assert decompress(compress(data, method=method)) == data

    def test_never_expands_beyond_header(self):
        data = DRBG("rand").random_bytes(2000)
        assert len(compress(data)) <= len(data) + 1

    def test_unknown_method_raises(self):
        with pytest.raises(ParameterError):
            compress(b"x", method="zstd")
        with pytest.raises(ParameterError):
            decompress(b"\x63payload")
        with pytest.raises(ParameterError):
            decompress(b"")


class TestRecipeCompression:
    def _recipe_blob(self, unique_fps: int = 30, entries: int = 300) -> bytes:
        from repro.server.messages import RecipeEntry

        rng = DRBG("recipes")
        fps = [rng.random_bytes(32) for _ in range(unique_fps)]
        return b"".join(
            RecipeEntry(fps[i % unique_fps], 8192).pack() for i in range(entries)
        )

    def test_roundtrip(self):
        blob = self._recipe_blob()
        assert decompress_recipe(compress_recipe(blob)) == blob

    def test_ratio_on_redundant_recipes(self):
        """Deduplicated backups repeat fingerprints across recipes; the
        paper cites recipe compression [41] as a real saving."""
        blob = self._recipe_blob()
        compressed = compress_recipe(blob)
        assert len(compressed) < len(blob) * 0.4

    def test_legacy_passthrough(self):
        """Uncompressed recipe blobs read back unchanged."""
        blob = self._recipe_blob(entries=3)
        assert decompress_recipe(blob) == blob

    def test_server_integration(self):
        """Servers with recipe compression store smaller recipe containers
        and still restore correctly."""
        from repro.cloud.network import Link
        from repro.cloud.provider import CloudProvider
        from repro.crypto.hashing import fingerprint
        from repro.server.messages import FileManifest, ShareMeta, ShareUpload
        from repro.server.server import CDStoreServer

        def run(compression: bool) -> tuple[int, list]:
            cloud = CloudProvider("c", Link(10), Link(10))
            server = CDStoreServer(0, cloud, recipe_compression=compression)
            data = b"share-payload" * 50
            upload = ShareUpload(
                meta=ShareMeta(fingerprint(data, "client"), len(data), 0, len(data)),
                data=data,
            )
            server.upload_shares("alice", [upload])
            # Many references to the same share: a compressible recipe.
            metas = [
                ShareMeta(upload.meta.fingerprint, len(data), i, len(data))
                for i in range(200)
            ]
            server.finalize_file(
                "alice", FileManifest(b"k", b"p", 200 * len(data), 200), metas
            )
            server.flush()
            recipe = server.get_recipe("alice", b"k")
            return cloud.stored_bytes, recipe

        size_on, recipe_on = run(True)
        size_off, recipe_off = run(False)
        assert size_on < size_off
        assert [e.fingerprint for e in recipe_on] == [e.fingerprint for e in recipe_off]
