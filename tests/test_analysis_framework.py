"""Engine-level tests: suppressions, file collection, CLI, rule docs."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisError, Finding, RULE_DOCS, run_analysis
from repro.analysis.engine import _Suppressions, iter_python_files
from repro.cli import main

REPO_ROOT = Path(__file__).parent.parent


def write(path: Path, body: str) -> Path:
    path.write_text(textwrap.dedent(body))
    return path


# ---------------------------------------------------------------------------
# Suppression parsing


def test_justified_suppression_covers_its_rule():
    sup = _Suppressions(
        "x.py", ["a = 1  # analysis: ignore[LOCK-001] -- teardown only"]
    )
    assert sup.covers(Finding("x.py", 1, "LOCK-001", "m"))
    assert not sup.covers(Finding("x.py", 1, "DUR-001", "m"))
    assert not sup.covers(Finding("x.py", 2, "LOCK-001", "m"))
    assert sup.unjustified == []


def test_multi_rule_suppression():
    sup = _Suppressions(
        "x.py", ["a = 1  # analysis: ignore[DUR-001, DUR-002] -- advisory file"]
    )
    assert sup.covers(Finding("x.py", 1, "DUR-001", "m"))
    assert sup.covers(Finding("x.py", 1, "DUR-002", "m"))


def test_bare_suppression_is_sup001_and_covers_nothing():
    sup = _Suppressions("x.py", ["a = 1  # analysis: ignore[LOCK-001]"])
    assert not sup.covers(Finding("x.py", 1, "LOCK-001", "m"))
    assert [f.rule for f in sup.unjustified] == ["SUP-001"]
    assert sup.unjustified[0].line == 1


def test_suppression_justification_must_be_nonempty():
    # `-- ` followed by whitespace only is still bare.
    sup = _Suppressions("x.py", ["a = 1  # analysis: ignore[LIFE-001] --   "])
    assert [f.rule for f in sup.unjustified] == ["SUP-001"]


def test_finding_render_format():
    rendered = Finding("src/x.py", 42, "DUR-001", "torn publish").render()
    assert rendered == "src/x.py:42: DUR-001 torn publish"


# ---------------------------------------------------------------------------
# File collection


def test_iter_python_files_recurses_and_dedups(tmp_path):
    (tmp_path / "pkg").mkdir()
    a = write(tmp_path / "pkg" / "a.py", "x = 1\n")
    write(tmp_path / "pkg" / "note.txt", "not python\n")
    pairs = iter_python_files([tmp_path, a])  # a.py given twice
    assert [p.name for p, _ in pairs] == ["a.py"]


def test_run_analysis_fails_loudly_on_syntax_error(tmp_path):
    write(tmp_path / "broken.py", "def f(:\n")
    with pytest.raises(AnalysisError, match="cannot parse"):
        run_analysis([tmp_path])


def test_run_analysis_clean_file(tmp_path):
    write(tmp_path / "ok.py", "def f():\n    return 1\n")
    assert run_analysis([tmp_path]) == []


# ---------------------------------------------------------------------------
# CLI


def test_cli_rules_lists_every_rule(capsys):
    assert main(["analyze", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_DOCS:
        assert rule in out


def test_cli_exit_codes_and_rendering(tmp_path, capsys):
    clean = write(tmp_path / "clean.py", "x = 1\n")
    assert main(["analyze", str(clean)]) == 0
    assert capsys.readouterr().out == ""

    dirty = write(
        tmp_path / "dirty.py",
        """\
        import socket


        def leak(address):
            sock = socket.create_connection(address)
            sock.settimeout(1.0)
        """,
    )
    assert main(["analyze", str(dirty)]) == 1
    captured = capsys.readouterr()
    assert f"{dirty}:5: LIFE-001" in captured.out
    assert "1 finding(s)" in captured.err


# ---------------------------------------------------------------------------
# Documentation sync


def test_rule_docs_match_readme_invariants_section():
    """Every rule id documented by --rules appears in the README table."""
    readme = (REPO_ROOT / "README.md").read_text()
    for rule in RULE_DOCS:
        assert rule in readme, f"{rule} missing from README invariants section"


def test_every_rule_doc_is_a_sentence():
    for rule, doc in RULE_DOCS.items():
        assert len(doc) > 20, rule
