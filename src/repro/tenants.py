"""Tenant identity, shared-secret auth, and quota accounting.

Multi-tenant serving needs three things the core dedup stack does not
provide: a way to *prove* a connection speaks for a tenant, a durable
record of how much that tenant has stored, and limits that stop one
tenant from starving the rest.  This module owns all three:

* :class:`TenantRegistry` — the server-side table of tenants
  (``tenant_id`` -> shared secret, role, :class:`TenantQuota`), loaded
  from a JSON file next to the deployment root.  When a registry is
  present the TCP server requires the handshake; when absent the server
  runs open, preserving single-operator setups.
* :func:`auth_proof` — the HMAC-SHA256 challenge-response proof both
  sides compute.  The server nonce is fresh per connection, so a
  captured proof replays to nothing.
* :class:`TenantUsage` — the packed per-tenant accounting record the
  server persists in its index (same durability as share metadata, so
  quota state survives kill -9 like everything else).
* :class:`TokenBucket` — request-rate limiting, enforced per tenant at
  the connection layer.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ParameterError, StorageError

__all__ = [
    "Credentials",
    "ROLE_ADMIN",
    "ROLE_TENANT",
    "TENANTS_FILE_NAME",
    "TenantQuota",
    "TenantRecord",
    "TenantRegistry",
    "TenantUsage",
    "TokenBucket",
    "auth_proof",
]

ROLE_TENANT = "tenant"
ROLE_ADMIN = "admin"

#: Conventional registry file name under a deployment root; ``repro
#: serve`` auto-loads it when present.
TENANTS_FILE_NAME = "tenants.json"

#: Domain-separation label for auth proofs, versioned independently of
#: the wire revision so a proof can never be confused with any other
#: HMAC this codebase computes.
_AUTH_LABEL = b"repro-auth-v1"


def auth_proof(
    secret: bytes, tenant_id: str, client_nonce: bytes, server_nonce: bytes
) -> bytes:
    """The 32-byte proof for one handshake.

    Covers both nonces *and* the claimed tenant id, so a proof minted for
    one (connection, tenant) pair verifies for no other.
    """
    message = b"\x00".join(
        [_AUTH_LABEL, tenant_id.encode("utf-8"), client_nonce, server_nonce]
    )
    return hmac.new(secret, message, hashlib.sha256).digest()


@dataclass(frozen=True)
class Credentials:
    """What a client presents: its tenant id and the shared secret."""

    tenant_id: str
    secret: bytes

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ParameterError("credentials need a non-empty tenant_id")
        if not self.secret:
            raise ParameterError("credentials need a non-empty secret")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` means unlimited on that axis."""

    max_bytes: int | None = None
    max_containers: int | None = None
    max_requests_per_sec: float | None = None

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_containers", "max_requests_per_sec"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ParameterError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class TenantRecord:
    """One registry row: identity, secret, role, and limits."""

    tenant_id: str
    secret: bytes
    role: str = ROLE_TENANT
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ParameterError("tenant_id must be non-empty")
        if not self.secret:
            raise ParameterError(f"tenant {self.tenant_id!r} needs a secret")
        if self.role not in (ROLE_TENANT, ROLE_ADMIN):
            raise ParameterError(
                f"tenant {self.tenant_id!r} has unknown role {self.role!r}"
            )

    @property
    def is_admin(self) -> bool:
        return self.role == ROLE_ADMIN

    def credentials(self) -> Credentials:
        return Credentials(tenant_id=self.tenant_id, secret=self.secret)


class TenantRegistry:
    """Immutable-after-load table of :class:`TenantRecord` by id."""

    def __init__(self, records: list[TenantRecord] | None = None) -> None:
        self._records: dict[str, TenantRecord] = {}
        for record in records or []:
            self.add(record)

    def add(self, record: TenantRecord) -> None:
        if record.tenant_id in self._records:
            raise ParameterError(f"duplicate tenant id {record.tenant_id!r}")
        self._records[record.tenant_id] = record

    def get(self, tenant_id: str) -> TenantRecord | None:
        return self._records.get(tenant_id)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TenantRecord]:
        return sorted(self._records.values(), key=lambda r: r.tenant_id)

    # ------------------------------------------------------------------
    # persistence (tenants.json)
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | Path) -> "TenantRegistry":
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StorageError(f"cannot read tenant registry {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ParameterError(f"tenant registry {path} is not JSON: {exc}") from exc
        if not isinstance(raw, dict) or not isinstance(raw.get("tenants"), list):
            raise ParameterError(
                f"tenant registry {path} must be {{'tenants': [...]}}"
            )
        registry = cls()
        for row in raw["tenants"]:
            if not isinstance(row, dict):
                raise ParameterError(f"tenant registry {path}: rows must be objects")
            try:
                quota = TenantQuota(
                    max_bytes=row.get("max_bytes"),
                    max_containers=row.get("max_containers"),
                    max_requests_per_sec=row.get("max_requests_per_sec"),
                )
                registry.add(
                    TenantRecord(
                        tenant_id=str(row.get("tenant_id", "")),
                        secret=str(row.get("secret", "")).encode("utf-8"),
                        role=str(row.get("role", ROLE_TENANT)),
                        quota=quota,
                    )
                )
            except ParameterError as exc:
                raise ParameterError(f"tenant registry {path}: {exc}") from exc
        return registry

    def to_file(self, path: str | Path) -> None:
        path = Path(path)
        rows = []
        for record in self.records():
            row: dict[str, object] = {
                "tenant_id": record.tenant_id,
                "secret": record.secret.decode("utf-8", errors="replace"),
                "role": record.role,
            }
            for name in ("max_bytes", "max_containers", "max_requests_per_sec"):
                value = getattr(record.quota, name)
                if value is not None:
                    row[name] = value
            rows.append(row)
        path.write_text(
            json.dumps({"tenants": rows}, indent=2) + "\n", encoding="utf-8"
        )


# ---------------------------------------------------------------------------
# durable per-tenant accounting
# ---------------------------------------------------------------------------

_USAGE = struct.Struct(">QI")


@dataclass
class TenantUsage:
    """Durable counters the server charges quotas against.

    ``bytes_stored`` counts each share a tenant references at least once
    (charged when its per-tenant refcount goes 0 -> 1 at finalize,
    released when it returns to 0 at delete), so intra-tenant dedup is
    free but cross-tenant dedup still charges every referencing tenant —
    a tenant cannot learn that its bytes deduped against another's.
    ``containers`` counts containers sealed with this tenant's shares.
    """

    bytes_stored: int = 0
    containers: int = 0

    def pack(self) -> bytes:
        return _USAGE.pack(self.bytes_stored, self.containers)

    @classmethod
    def unpack(cls, blob: bytes) -> "TenantUsage":
        if len(blob) != _USAGE.size:
            raise StorageError(
                f"tenant usage record is {len(blob)} bytes, expected {_USAGE.size}"
            )
        bytes_stored, containers = _USAGE.unpack(blob)
        return cls(bytes_stored=bytes_stored, containers=containers)

    def copy(self) -> "TenantUsage":
        return replace(self)


# ---------------------------------------------------------------------------
# request-rate limiting
# ---------------------------------------------------------------------------


class TokenBucket:
    """Classic token bucket; caller supplies monotonic timestamps.

    Not self-locking: the connection layer mutates buckets under its own
    tenant-table lock, which also keeps one tenant's parallel
    connections sharing a single budget.
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise ParameterError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self._tokens = self.burst
        self._stamp: float | None = None

    def allow(self, now: float) -> bool:
        """Spend one token if available; refill from elapsed time first."""
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
