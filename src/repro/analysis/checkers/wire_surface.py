"""WIRE-001..006: every wire frame type is handled everywhere, once.

A project-level checker: it needs ``net/wire.py`` (the constant
registry), the server-side dispatch modules (``net/server.py``,
``net/dispatch.py``, ``net/async_server.py``), ``net/client.py``
(proxy), ``server/protocol.py`` (the declared API surface), the
repository README (human-facing frame table) and ``docs/PROTOCOL.md``
(the normative wire spec) in one view.  For each ``wire.py`` in the
analysed set it locates the sibling server/client modules in the same
directory, the nearest ``README.md`` and ``PROTOCOL.md`` walking up
from the wire module on disk, and any analysed ``protocol.py``
declaring a ``typing.Protocol`` class.

* WIRE-001 — a ``T_*``/``R_*`` constant never referenced in any of the
  server-side modules (front-ends + shared dispatcher): the dispatch
  (or its response encoding) cannot cover it.
* WIRE-002 — a constant never referenced in the client module: the proxy
  can neither send nor expect it.
* WIRE-003 — a constant whose short name (``T_FETCH_SHARES`` →
  ``FETCH_SHARES``) is missing from the README frame table.
* WIRE-004 — two constants share one wire byte value (dispatch
  shadowing: the second can never be selected).
* WIRE-005 — the wire surface and the declared server-API surface have
  drifted: a Protocol method with no ``METHOD_FRAMES`` mapping (and not
  in ``LOCAL_ONLY_METHODS``), a ``METHOD_FRAMES`` key the Protocol never
  declares, or a ``T_*`` request frame that is neither control machinery
  (``CONTROL_FRAMES``) nor gateway-tier (``GATEWAY_FRAMES`` — the read
  gateway's surface, deliberately outside the server API) nor
  observability-tier (``OBS_FRAMES`` — admin diagnostics, likewise
  outside the storage API) nor mapped to any method.  Only runs when
  the wire module actually declares ``METHOD_FRAMES``, so
  single-surface fixtures stay exercisable.
* WIRE-006 — the normative spec (``PROTOCOL.md`` / ``docs/PROTOCOL.md``,
  found walking up from the wire module) has drifted from the code: a
  frame constant with no spec line carrying both its name and its byte
  value, an error class (``wire_code`` in any analysed ``errors.py``)
  missing from the spec's error-code registry, or — when the wire module
  declares ``METHOD_FRAMES``, i.e. is the real registry rather than a
  single-surface fixture — no spec document at all.

References are whole-word textual matches, which is exactly the right
strength here: ``wire.T_PING`` and ``T_PING`` both count, a constant
mentioned only in a comment counts too — and that is fine, because the
point is "adding a frame forces you to visit every surface", and a
comment claiming handling is at least a visited, reviewable claim.
Missing sibling files are skipped rather than flagged so fixtures can
exercise one surface at a time.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine import FileContext, Finding, Project

__all__ = ["check_wire_surface"]


def _frame_constants(ctx: FileContext) -> list[tuple[str, int, int]]:
    """Module-level ``(name, value, lineno)`` for every T_*/R_* int const."""
    out: list[tuple[str, int, int]] = []
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and (target.id.startswith("T_") or target.id.startswith("R_"))
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
            ):
                out.append((target.id, stmt.value.value, stmt.lineno))
    return out


def _word_present(word: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


def _nearest_readme(wire_path: Path) -> Path | None:
    for parent in wire_path.resolve().parents:
        candidate = parent / "README.md"
        if candidate.is_file():
            return candidate
    return None


def _nearest_protocol_doc(wire_path: Path) -> Path | None:
    """``PROTOCOL.md`` (or ``docs/PROTOCOL.md``) walking up from the wire
    module, stopping at the README root so fixture trees never borrow the
    enclosing repository's spec."""
    for parent in wire_path.resolve().parents:
        for candidate in (parent / "PROTOCOL.md", parent / "docs" / "PROTOCOL.md"):
            if candidate.is_file():
                return candidate
        if (parent / "README.md").is_file():
            return None
    return None


def _module_assignment(ctx: FileContext, var_name: str) -> ast.expr | None:
    """The value expression of a module-level ``NAME = ...`` (ann or not)."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == var_name
                for target in stmt.targets
            ):
                return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == var_name
                and stmt.value is not None
            ):
                return stmt.value
    return None


def _method_frames(ctx: FileContext) -> dict[str, tuple[str, int]] | None:
    """``METHOD_FRAMES`` as ``{method: (frame constant name, key lineno)}``."""
    value = _module_assignment(ctx, "METHOD_FRAMES")
    if not isinstance(value, ast.Dict):
        return None
    out: dict[str, tuple[str, int]] = {}
    for key, val in zip(value.keys, value.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(val, ast.Name)
        ):
            out[key.value] = (val.id, key.lineno)
    return out


def _referenced_names(ctx: FileContext, var_name: str) -> set[str]:
    """Constant *names* inside e.g. ``CONTROL_FRAMES = frozenset({T_PING})``."""
    value = _module_assignment(ctx, var_name)
    if value is None:
        return set()
    return {
        node.id
        for node in ast.walk(value)
        if isinstance(node, ast.Name) and node.id != "frozenset"
    }


def _string_members(ctx: FileContext, var_name: str) -> set[str]:
    """String literals inside e.g. ``LOCAL_ONLY_METHODS = frozenset({"close"})``."""
    value = _module_assignment(ctx, var_name)
    if value is None:
        return set()
    return {
        node.value
        for node in ast.walk(value)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _protocol_class(ctx: FileContext) -> ast.ClassDef | None:
    """The first module-level class subclassing ``typing.Protocol``."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef) and any(
            (isinstance(base, ast.Name) and base.id == "Protocol")
            or (isinstance(base, ast.Attribute) and base.attr == "Protocol")
            for base in stmt.bases
        ):
            return stmt
    return None


def _check_protocol_surface(project: Project, wire: FileContext) -> list[Finding]:
    """WIRE-005: METHOD_FRAMES <-> Protocol <-> T_* request frames agree."""
    frames = _method_frames(wire)
    if frames is None:
        return []
    findings: list[Finding] = []

    control = _referenced_names(wire, "CONTROL_FRAMES")
    gateway = _referenced_names(wire, "GATEWAY_FRAMES")
    obs = _referenced_names(wire, "OBS_FRAMES")
    local_only = _string_members(wire, "LOCAL_ONLY_METHODS")
    mapped = {frame_name for frame_name, _ in frames.values()}

    # Every request frame must be connection machinery, a gateway-tier
    # or observability-tier frame, or the carrier of some API method —
    # any other T_* can never dispatch.
    for name, _value, lineno in _frame_constants(wire):
        if (
            name.startswith("T_")
            and name not in control
            and name not in gateway
            and name not in obs
            and name not in mapped
        ):
            findings.append(
                wire.finding(
                    lineno,
                    "WIRE-005",
                    f"request frame {name} is in none of CONTROL_FRAMES, "
                    f"GATEWAY_FRAMES, OBS_FRAMES, or METHOD_FRAMES — "
                    f"nothing can be dispatched to it",
                )
            )

    protocol_ctx = protocol_cls = None
    for ctx in project.find("/protocol.py"):
        cls = _protocol_class(ctx)
        if cls is not None:
            protocol_ctx, protocol_cls = ctx, cls
            break
    if protocol_cls is None or protocol_ctx is None:
        return findings

    methods = {
        stmt.name: stmt.lineno
        for stmt in protocol_cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not stmt.name.startswith("_")
    }

    for method, lineno in sorted(methods.items()):
        if method in local_only or method in frames:
            continue
        findings.append(
            protocol_ctx.finding(
                lineno,
                "WIRE-005",
                f"Protocol method {method} has no METHOD_FRAMES mapping in "
                f"{wire.display_path} and is not in LOCAL_ONLY_METHODS — "
                f"decide its wire frame or declare it local-only",
            )
        )
    for method, (frame_name, lineno) in sorted(frames.items()):
        if method not in methods:
            findings.append(
                wire.finding(
                    lineno,
                    "WIRE-005",
                    f"METHOD_FRAMES maps {method!r} (to {frame_name}) but "
                    f"{protocol_cls.name} in {protocol_ctx.display_path} "
                    f"declares no such method",
                )
            )
    for method in sorted(local_only.intersection(frames)):
        findings.append(
            wire.finding(
                frames[method][1],
                "WIRE-005",
                f"{method!r} is in LOCAL_ONLY_METHODS yet has a "
                f"METHOD_FRAMES mapping — it cannot be both local-only "
                f"and wire-reachable",
            )
        )
    return findings


def _class_wire_codes(ctx: FileContext) -> list[tuple[str, int, int]]:
    """``(class name, wire_code, lineno)`` for every class declaring one.

    The lineno anchors on the ``wire_code = N`` assignment so a justified
    suppression can sit on the exact drifting line.
    """
    out: list[tuple[str, int, int]] = []
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for node in stmt.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "wire_code"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                out.append((stmt.name, node.value.value, node.lineno))
    return out


def _check_protocol_doc(project: Project, wire: FileContext) -> list[Finding]:
    """WIRE-006: the normative PROTOCOL.md spec covers the whole surface."""
    if _method_frames(wire) is None:
        # Not the canonical registry (a single-surface fixture): no doc
        # contract to enforce.
        return []
    doc = _nearest_protocol_doc(wire.path)
    if doc is None:
        return [
            wire.finding(
                1,
                "WIRE-006",
                "this wire module declares METHOD_FRAMES but no "
                "PROTOCOL.md / docs/PROTOCOL.md exists between it and the "
                "README root — the wire protocol has no normative spec to "
                "drift-check against",
            )
        ]
    doc_lines = doc.read_text().splitlines()

    def documented(name: str, value: int | str) -> bool:
        # A spec line must carry the symbol *and* its value together:
        # matching them independently would accept a table that re-pairs
        # names with the wrong bytes.
        values = (
            (f"0x{value:02X}", f"0x{value:02x}")
            if isinstance(value, int)
            else (str(value),)
        )
        return any(
            _word_present(name, line)
            and any(_word_present(v, line) for v in values)
            for line in doc_lines
        )

    findings: list[Finding] = []
    for name, value, lineno in _frame_constants(wire):
        if not documented(name, value):
            findings.append(
                wire.finding(
                    lineno,
                    "WIRE-006",
                    f"frame {name} (0x{value:02X}) has no line in "
                    f"{doc.name} carrying both its name and byte value — "
                    f"the spec must enumerate every frame",
                )
            )
    # Error-code registry: every wire_code-bearing class in any analysed
    # errors.py must appear in the spec next to its code.  When no
    # errors.py is in the analysed set (e.g. a scoped run over net/ only)
    # this cross-check simply has nothing to say.
    for ctx in project.find("/errors.py"):
        for cls_name, code, lineno in _class_wire_codes(ctx):
            if not documented(cls_name, f"{code}"):
                findings.append(
                    ctx.finding(
                        lineno,
                        "WIRE-006",
                        f"error class {cls_name} (wire code {code}) is "
                        f"missing from {doc.name}'s error-code registry",
                    )
                )
    return findings


def _check_one_wire(project: Project, wire: FileContext) -> list[Finding]:
    constants = _frame_constants(wire)
    if not constants:
        return []
    findings: list[Finding] = []

    by_value: dict[int, list[tuple[str, int]]] = {}
    for name, value, lineno in constants:
        by_value.setdefault(value, []).append((name, lineno))
    for value, entries in sorted(by_value.items()):
        if len(entries) > 1:
            names = ", ".join(name for name, _ in entries)
            findings.append(
                wire.finding(
                    entries[-1][1],
                    "WIRE-004",
                    f"frame byte 0x{value:02X} is assigned to {names} — "
                    f"dispatch on the shared value shadows all but one",
                )
            )

    wire_dir = str(Path(wire.display_path).parent)
    siblings = {
        Path(ctx.display_path).name: ctx
        for ctx in project.files
        if str(Path(ctx.display_path).parent) == wire_dir
    }
    # The server-side surface spans the shared dispatcher plus both
    # front-ends; a constant referenced by any of them is covered.
    server_side = [
        siblings[name]
        for name in ("server.py", "dispatch.py", "async_server.py")
        if name in siblings
    ]
    surfaces = [
        ("WIRE-001", server_side, "server dispatch surface"),
        (
            "WIRE-002",
            [siblings["client.py"]] if "client.py" in siblings else [],
            "client proxy",
        ),
    ]
    for rule, modules, role in surfaces:
        if not modules:
            continue
        paths = ", ".join(ctx.display_path for ctx in modules)
        for name, _value, lineno in constants:
            if not any(_word_present(name, ctx.source) for ctx in modules):
                findings.append(
                    wire.finding(
                        lineno,
                        rule,
                        f"frame constant {name} is never referenced by the "
                        f"{role} ({paths}) — the frame cannot "
                        f"be handled there",
                    )
                )

    readme = _nearest_readme(wire.path)
    if readme is not None:
        readme_text = readme.read_text()
        for name, _value, lineno in constants:
            short = name.split("_", 1)[1] if "_" in name else name
            if not _word_present(short, readme_text):
                findings.append(
                    wire.finding(
                        lineno,
                        "WIRE-003",
                        f"frame {name} ({short}) is missing from the "
                        f"frame table in {readme.name}",
                    )
                )

    findings.extend(_check_protocol_surface(project, wire))
    findings.extend(_check_protocol_doc(project, wire))
    return findings


def check_wire_surface(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for wire in project.find("/wire.py"):
        findings.extend(_check_one_wire(project, wire))
    return findings
