"""Synthetic FSL-like home-directory backup workload (§5.2 dataset (i)).

Structure calibrated to the paper's measurements (Figure 6):

* nine users, sixteen weekly backups, variable-size chunks averaging 8 KB
  (2-16 KB bounds);
* week 1 contains internal duplicates (so intra-user dedup already saves
  ~20 %, explaining the faster first-backup upload of §5.5) and a small
  cross-user shared fraction (inter-user savings stay ≤ ~13 %);
* every later week modifies/adds only a few percent of each user's data,
  so intra-user savings for subsequent backups are ≥ 94 %.

All randomness flows from one :class:`~repro.crypto.drbg.DRBG` seed, so a
given configuration regenerates the identical trace.
"""

from __future__ import annotations

from repro.crypto.drbg import DRBG
from repro.errors import WorkloadError
from repro.workloads.base import BackupSnapshot, ChunkRecord, Workload

__all__ = ["FSLWorkload"]


class FSLWorkload(Workload):
    """Generator of FSL-like weekly backup chunk traces.

    Parameters
    ----------
    users:
        Number of users (paper: 9).
    weeks:
        Number of weekly backups (paper: 16).
    chunks_per_user:
        Week-1 chunk count per user; scales the logical size (the paper's
        8.11 TB over 9 users ≈ millions of chunks — default is laptop
        scale, raise it for bigger runs).
    modify_rate / append_rate:
        Fraction of a user's chunks replaced / appended each week.
    internal_dup:
        Fraction of week-1 chunks duplicated from the user's own data.
    shared_frac:
        Fraction of new chunks drawn from the organisation-shared pool
        (drives the small inter-user savings).
    """

    def __init__(
        self,
        users: int = 9,
        weeks: int = 16,
        chunks_per_user: int = 1200,
        avg_chunk: int = 8192,
        min_chunk: int = 2048,
        max_chunk: int = 16384,
        modify_rate: float = 0.018,
        append_rate: float = 0.008,
        internal_dup: float = 0.40,
        shared_frac: float = 0.16,
        seed: bytes | str = "fsl-workload",
    ) -> None:
        if users <= 0 or weeks <= 0 or chunks_per_user <= 0:
            raise WorkloadError("users, weeks and chunks_per_user must be positive")
        if not 0 <= modify_rate < 1 or not 0 <= append_rate < 1:
            raise WorkloadError("rates must be in [0, 1)")
        self.users = [f"user{i:02d}" for i in range(users)]
        self.weeks = weeks
        self.chunks_per_user = chunks_per_user
        self.avg_chunk = avg_chunk
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.modify_rate = modify_rate
        self.append_rate = append_rate
        self.internal_dup = internal_dup
        self.shared_frac = shared_frac
        self._root = DRBG(seed)
        # Shared-pool chunks are lazily minted, one DRBG stream for all users.
        self._shared_rng = self._root.fork("shared-pool")
        self._shared_pool: list[ChunkRecord] = []
        # Cache: user -> list of weekly chunk lists (index 0 = week 1).
        self._history: dict[str, list[list[ChunkRecord]]] = {}

    # ------------------------------------------------------------------
    # chunk minting
    # ------------------------------------------------------------------
    def _chunk_size(self, rng: DRBG) -> int:
        return rng.randint(self.min_chunk, self.max_chunk)

    def _new_chunk(self, rng: DRBG) -> ChunkRecord:
        return ChunkRecord(fingerprint=rng.random_bytes(32), size=self._chunk_size(rng))

    def _shared_chunk(self, rng: DRBG) -> ChunkRecord:
        """Draw from (and lazily grow) the organisation-shared pool."""
        grow = not self._shared_pool or rng.random() < 0.5
        if grow:
            self._shared_pool.append(self._new_chunk(self._shared_rng))
        return self._shared_pool[rng.randint(0, len(self._shared_pool) - 1)]

    def _mint(self, rng: DRBG) -> ChunkRecord:
        """A 'new' chunk: mostly unique, sometimes from the shared pool."""
        if rng.random() < self.shared_frac:
            return self._shared_chunk(rng)
        return self._new_chunk(rng)

    # ------------------------------------------------------------------
    # weekly evolution
    # ------------------------------------------------------------------
    def _initial(self, user: str) -> list[ChunkRecord]:
        rng = self._root.fork(f"{user}/w1")
        chunks: list[ChunkRecord] = []
        for _ in range(self.chunks_per_user):
            if chunks and rng.random() < self.internal_dup:
                chunks.append(chunks[rng.randint(0, len(chunks) - 1)])
            else:
                chunks.append(self._mint(rng))
        return chunks

    def _evolve(self, user: str, week: int, prev: list[ChunkRecord]) -> list[ChunkRecord]:
        rng = self._root.fork(f"{user}/w{week}")
        chunks = list(prev)
        n_modify = max(1, int(len(chunks) * self.modify_rate))
        for _ in range(n_modify):
            chunks[rng.randint(0, len(chunks) - 1)] = self._mint(rng)
        n_append = int(len(chunks) * self.append_rate)
        for _ in range(n_append):
            chunks.append(self._mint(rng))
        return chunks

    def _user_history(self, user: str, upto_week: int) -> list[list[ChunkRecord]]:
        if user not in self.users:
            raise WorkloadError(f"unknown user {user!r}")
        history = self._history.setdefault(user, [])
        if not history:
            history.append(self._initial(user))
        while len(history) < upto_week:
            week = len(history) + 1
            history.append(self._evolve(user, week, history[-1]))
        return history

    # ------------------------------------------------------------------
    def snapshot(self, user: str, week: int) -> BackupSnapshot:
        if not 1 <= week <= self.weeks:
            raise WorkloadError(f"week {week} outside [1, {self.weeks}]")
        history = self._user_history(user, week)
        return BackupSnapshot(user=user, week=week, chunks=tuple(history[week - 1]))
