"""Benchmark drivers: sanity of every table/figure generator."""

import pytest

from repro.bench.dedup import simulate_two_stage
from repro.bench.encoding import encoding_speed, figure5b_k, sweep_n, sweep_threads
from repro.bench.reporting import format_table
from repro.bench.table1 import scheme_comparison
from repro.bench.transfer import (
    aggregate_upload_speeds,
    baseline_transfer_speeds,
    cloud_speed_table,
    trace_transfer_speeds,
)
from repro.cloud.testbed import cloud_testbed, lan_testbed
from repro.workloads import FSLWorkload


class TestTable1Driver:
    def test_rows_cover_all_schemes(self):
        rows = scheme_comparison(secret_size=3000)
        names = [r.scheme for r in rows]
        assert names == [
            "ssss",
            "ida",
            "rsss",
            "ssms",
            "aont-rs",
            "caont-rs-rivest",
            "caont-rs",
        ]

    def test_measured_close_to_analytic(self):
        for row in scheme_comparison(secret_size=6000):
            assert row.measured_blowup == pytest.approx(row.analytic_blowup, rel=0.05)

    def test_table1_ordering(self):
        """SSSS blowup n; IDA lowest; AONT-RS family near n/k."""
        rows = {r.scheme: r for r in scheme_comparison(secret_size=6000)}
        assert rows["ssss"].measured_blowup == max(r.measured_blowup for r in rows.values())
        assert rows["ida"].measured_blowup == min(r.measured_blowup for r in rows.values())


class TestEncodingDriver:
    def test_single_measurement(self):
        result = encoding_speed("caont-rs", data_bytes=128 << 10)
        assert result.mbps > 0
        assert result.scheme == "caont-rs"

    def test_figure5b_k_rule(self):
        assert figure5b_k(4) == 3
        assert figure5b_k(8) == 6
        assert figure5b_k(20) == 15

    def test_sweep_threads_shape(self):
        results = sweep_threads(threads_list=(1, 2), schemes=("caont-rs",), data_bytes=64 << 10)
        assert len(results) == 2
        assert {r.threads for r in results} == {1, 2}

    def test_sweep_n_shape(self):
        results = sweep_n(n_list=(4, 8), schemes=("caont-rs",), data_bytes=64 << 10)
        assert [(r.n, r.k) for r in results] == [(4, 3), (8, 6)]

    def test_caont_rs_fastest(self):
        """The paper's Figure 5 headline: OAEP-based CAONT-RS beats both
        Rivest-AONT codecs."""
        results = {
            scheme: encoding_speed(scheme, data_bytes=256 << 10)
            for scheme in ("caont-rs", "aont-rs", "caont-rs-rivest")
        }
        assert results["caont-rs"].mbps > results["aont-rs"].mbps
        assert results["caont-rs"].mbps > results["caont-rs-rivest"].mbps


class TestTransferDrivers:
    def test_table2_ordering(self):
        rows = {r.cloud: r for r in cloud_speed_table(cloud_testbed())}
        # Azure/Rackspace are the fast pair; Amazon/Google the slow pair.
        assert rows["azure"].upload_mbps > rows["amazon"].upload_mbps
        assert rows["rackspace"].download_mbps > rows["google"].download_mbps

    def test_fig7a_lan_shape(self):
        s = baseline_transfer_speeds(lan_testbed())
        assert s.upload_duplicate_mbps > s.download_mbps > s.upload_unique_mbps

    def test_fig7a_cloud_shape(self):
        s = baseline_transfer_speeds(cloud_testbed())
        assert s.upload_duplicate_mbps > s.download_mbps > s.upload_unique_mbps
        # The dup/uniq gap is far wider on the Internet (paper: >9x).
        assert s.upload_duplicate_mbps / s.upload_unique_mbps > 5

    def test_fig7b_shape(self):
        workload = FSLWorkload(users=3, weeks=3, chunks_per_user=200)
        s = trace_transfer_speeds(lan_testbed(), workload, users=3, weeks=3)
        uniq = baseline_transfer_speeds(lan_testbed()).upload_unique_mbps
        assert s.upload_first_mbps > uniq  # first backup has internal dups
        assert s.upload_subsequent_mbps > s.upload_first_mbps
        assert s.download_mbps < baseline_transfer_speeds(lan_testbed()).download_mbps

    def test_fig8_shape(self):
        rows = aggregate_upload_speeds(lan_testbed())
        uniq = [r.unique_mbps for r in rows]
        dup = [r.duplicate_mbps for r in rows]
        # Monotone non-decreasing with saturation.
        assert all(b >= a - 1e-6 for a, b in zip(uniq, uniq[1:]))
        assert all(b >= a - 1e-6 for a, b in zip(dup, dup[1:]))
        assert dup[-1] > uniq[-1]
        # Knee: dup saturates by 4+ clients (§5.5 CPU saturation).
        assert dup[7] == pytest.approx(dup[4], rel=0.05)
        assert uniq[7] < 8 * uniq[0]  # far from linear scaling


class TestDedupDriver:
    def test_rows_per_week(self):
        workload = FSLWorkload(users=2, weeks=4, chunks_per_user=100)
        rows = simulate_two_stage(workload)
        assert [r.week for r in rows] == [1, 2, 3, 4]
        # Cumulative counters never decrease.
        for a, b in zip(rows, rows[1:]):
            assert b.cumulative_logical_data >= a.cumulative_logical_data
            assert b.cumulative_physical_shares >= a.cumulative_physical_shares


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "x" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
