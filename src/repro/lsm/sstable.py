"""Immutable sorted-string-table (SSTable) files.

An SSTable holds a sorted run of key-value records flushed from the
memtable, with three auxiliary structures that make lookups cheap:

* a **bloom filter** over all keys (skip the file entirely on miss);
* a **sparse block index** (first key of every block) loaded in memory;
* fixed-size **data blocks** fetched on demand, cacheable by the store's
  LRU block cache.

File layout::

    [block 0][block 1]...[block m-1][index][bloom][footer]
    footer = >QQQQ  index_off, index_len, bloom_off, bloom_len  + magic

Blocks are sequences of ``u32 keylen | u32 vallen | key | value`` records,
where ``vallen == 0xFFFFFFFF`` marks a tombstone.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError
from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import TOMBSTONE

__all__ = ["SSTable"]

_MAGIC = b"CDSSTBL1"
_FOOTER = struct.Struct(">QQQQ8s")
_REC = struct.Struct(">II")
_TOMBSTONE_LEN = 0xFFFFFFFF

DEFAULT_BLOCK_SIZE = 4096


class SSTable:
    """Reader handle over one SSTable file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, 2)
                size = fh.tell()
                if size < _FOOTER.size:
                    raise StorageError(f"SSTable {self.path} truncated")
                fh.seek(size - _FOOTER.size)
                idx_off, idx_len, bloom_off, bloom_len, magic = _FOOTER.unpack(
                    fh.read(_FOOTER.size)
                )
                if magic != _MAGIC:
                    raise StorageError(f"SSTable {self.path}: bad magic")
                fh.seek(idx_off)
                index_blob = fh.read(idx_len)
                fh.seek(bloom_off)
                self.bloom = BloomFilter.from_bytes(fh.read(bloom_len))
        except OSError as exc:
            raise StorageError(f"cannot open SSTable {self.path}: {exc}") from exc
        # Sparse index: list of (first_key, offset, length) per block.
        self._index: list[tuple[bytes, int, int]] = []
        pos = 0
        while pos < len(index_blob):
            keylen, off, length = struct.unpack_from(">IQQ", index_blob, pos)
            pos += 20
            first_key = index_blob[pos : pos + keylen]
            pos += keylen
            self._index.append((first_key, off, length))

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        path: str | Path,
        items: Iterator[tuple[bytes, bytes | object]],
        block_size: int = DEFAULT_BLOCK_SIZE,
        fp_rate: float = 0.01,
    ) -> "SSTable":
        """Write sorted ``(key, value-or-TOMBSTONE)`` items to a new file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        materialised = list(items)
        bloom = BloomFilter(max(1, len(materialised)), fp_rate)
        index_parts: list[bytes] = []
        with open(path, "wb") as fh:
            block = bytearray()
            block_first: bytes | None = None

            def flush_block() -> None:
                nonlocal block, block_first
                if not block:
                    return
                off = fh.tell()
                fh.write(block)
                index_parts.append(
                    struct.pack(">IQQ", len(block_first), off, len(block))
                    + block_first
                )
                block = bytearray()
                block_first = None

            for key, value in materialised:
                bloom.add(key)
                if block_first is None:
                    block_first = key
                if value is TOMBSTONE:
                    block += _REC.pack(len(key), _TOMBSTONE_LEN) + key
                else:
                    block += _REC.pack(len(key), len(value)) + key + value
                if len(block) >= block_size:
                    flush_block()
            flush_block()
            idx_off = fh.tell()
            index_blob = b"".join(index_parts)
            fh.write(index_blob)
            bloom_off = fh.tell()
            bloom_blob = bloom.to_bytes()
            fh.write(bloom_blob)
            fh.write(
                _FOOTER.pack(idx_off, len(index_blob), bloom_off, len(bloom_blob), _MAGIC)
            )
            # The WAL is truncated right after this table lands; without
            # the fsync a crash could lose both copies of the memtable.
            fh.flush()
            os.fsync(fh.fileno())
        return cls(path)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _find_block(self, key: bytes) -> tuple[int, int] | None:
        """Binary-search the sparse index for the block that may hold key."""
        lo, hi = 0, len(self._index) - 1
        if hi < 0 or key < self._index[0][0]:
            return None
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._index[mid][0] <= key:
                lo = mid
            else:
                hi = mid - 1
        _, off, length = self._index[lo]
        return off, length

    def read_block(self, offset: int, length: int) -> bytes:
        """Read one raw data block (block-cache fill path)."""
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    @staticmethod
    def scan_block(blob: bytes) -> Iterator[tuple[bytes, bytes | object]]:
        """Iterate the records of a raw block."""
        pos = 0
        while pos < len(blob):
            keylen, vallen = _REC.unpack_from(blob, pos)
            pos += _REC.size
            key = blob[pos : pos + keylen]
            pos += keylen
            if vallen == _TOMBSTONE_LEN:
                yield key, TOMBSTONE
            else:
                yield key, blob[pos : pos + vallen]
                pos += vallen

    def get(self, key: bytes, block_cache=None):
        """Value bytes, TOMBSTONE, or None.

        ``block_cache`` is an optional mapping-like cache keyed by
        ``(path, offset)`` used to avoid re-reading hot blocks.
        """
        if key not in self.bloom:
            return None
        loc = self._find_block(key)
        if loc is None:
            return None
        cache_key = (str(self.path), loc[0])
        blob = block_cache.get(cache_key) if block_cache is not None else None
        if blob is None:
            blob = self.read_block(*loc)
            if block_cache is not None:
                block_cache.put(cache_key, blob)
        for rec_key, value in self.scan_block(blob):
            if rec_key == key:
                return value
            if rec_key > key:
                return None
        return None

    def items(self) -> Iterator[tuple[bytes, bytes | object]]:
        """Iterate every record in key order (compaction/scan path)."""
        return self.items_range()

    def items_range(
        self, lower: bytes | None = None, upper: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes | object]]:
        """Iterate records with ``lower <= key < upper``, in key order.

        Uses the sparse block index to skip whole blocks outside the
        range, so a prefix scan reads only the blocks that can hold it.
        """
        for i, (first_key, off, length) in enumerate(self._index):
            if upper is not None and first_key >= upper:
                break  # blocks are sorted; nothing further can match
            if (
                lower is not None
                and i + 1 < len(self._index)
                and self._index[i + 1][0] <= lower
            ):
                continue  # block ends before the range starts
            for key, value in self.scan_block(self.read_block(off, length)):
                if lower is not None and key < lower:
                    continue
                if upper is not None and key >= upper:
                    return
                yield key, value
